/// Decision provenance (obs/provenance.hpp): the "locbs.decision" record
/// each committed placement emits — encoding round trips, one decision per
/// placement consistent with its "locbs.place" twin, bit-identical streams
/// at every thread count, the seeded perturbation hook, and the bounded
/// JSONL sink that carries the records to disk.

#include "obs/provenance.hpp"

#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/analysis.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/rundiff.hpp"
#include "schedulers/loc_mps.hpp"
#include "util/rng.hpp"
#include "workloads/strassen.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/tce.hpp"

namespace locmps {
namespace {

std::vector<obs::ProvCandidate> sample_candidates() {
  obs::ProvCandidate a;
  a.tau = 0.0;
  a.subset = 0;
  a.start = 1.25;
  a.finish = 7.5;
  a.busy_from = 1.0;
  a.remote_bytes = 1048576.0;
  a.locality_score = 2097152.0;
  a.procs = {0, 3, 7};
  obs::ProvCandidate b;
  b.tau = 3.0 + 1e-13;  // exercise the %.17g exact round trip
  b.subset = 1;
  b.start = 3.0 + 1e-13;
  b.finish = 9.875;
  b.busy_from = 3.0;
  b.remote_bytes = 0.0;
  b.locality_score = 0.125;
  b.procs = {12};
  return {a, b};
}

TEST(Provenance, CandidateEncodingRoundTripsExactly) {
  const auto cands = sample_candidates();
  const auto back = obs::decode_candidates(obs::encode_candidates(cands));
  ASSERT_EQ(back.size(), cands.size());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    EXPECT_EQ(back[i].tau, cands[i].tau) << i;
    EXPECT_EQ(back[i].subset, cands[i].subset) << i;
    EXPECT_EQ(back[i].start, cands[i].start) << i;
    EXPECT_EQ(back[i].finish, cands[i].finish) << i;
    EXPECT_EQ(back[i].busy_from, cands[i].busy_from) << i;
    EXPECT_EQ(back[i].remote_bytes, cands[i].remote_bytes) << i;
    EXPECT_EQ(back[i].locality_score, cands[i].locality_score) << i;
    EXPECT_EQ(back[i].procs, cands[i].procs) << i;
  }
  EXPECT_TRUE(obs::decode_candidates("").empty());
  EXPECT_THROW(obs::decode_candidates("not;a;candidate"),
               std::runtime_error);
}

TEST(Provenance, DecisionSurvivesJsonlRoundTrip) {
  obs::PlacementDecision d;
  d.task = 5;
  d.np = 3;
  d.prio = 41.5;
  d.est = 2.0;
  d.start = 2.5;
  d.finish = 10.0;
  d.busy_from = 2.25;
  d.backfill_branch = true;
  d.locality_branch = false;
  d.comm_blind = false;
  d.backfilled = true;
  d.pruned = true;
  d.perturbed = true;
  d.holes_probed = 7;
  d.candidates_scored = 11;
  d.winner = 1;
  d.margin = 0.625;
  d.local_bytes = 4096.0;
  d.remote_bytes = 512.0;
  d.shortlist = sample_candidates();

  std::ostringstream buf;
  obs::JsonlSink sink(buf);
  sink.emit(obs::decision_event(d));
  std::istringstream in(buf.str());
  const auto records = obs::read_trace(in);
  ASSERT_EQ(records.size(), 1u);

  obs::PlacementDecision back;
  ASSERT_TRUE(obs::decision_from_record(records[0], back));
  EXPECT_EQ(back.task, d.task);
  EXPECT_EQ(back.np, d.np);
  EXPECT_EQ(back.prio, d.prio);
  EXPECT_EQ(back.est, d.est);
  EXPECT_EQ(back.start, d.start);
  EXPECT_EQ(back.finish, d.finish);
  EXPECT_EQ(back.busy_from, d.busy_from);
  EXPECT_EQ(back.backfill_branch, d.backfill_branch);
  EXPECT_EQ(back.locality_branch, d.locality_branch);
  EXPECT_EQ(back.comm_blind, d.comm_blind);
  EXPECT_EQ(back.backfilled, d.backfilled);
  EXPECT_EQ(back.pruned, d.pruned);
  EXPECT_EQ(back.perturbed, d.perturbed);
  EXPECT_EQ(back.holes_probed, d.holes_probed);
  EXPECT_EQ(back.candidates_scored, d.candidates_scored);
  EXPECT_EQ(back.winner, d.winner);
  EXPECT_EQ(back.margin, d.margin);
  EXPECT_EQ(back.local_bytes, d.local_bytes);
  EXPECT_EQ(back.remote_bytes, d.remote_bytes);
  ASSERT_EQ(back.shortlist.size(), d.shortlist.size());
  EXPECT_EQ(back.shortlist[1].procs, d.shortlist[1].procs);

  // A non-decision record is declined, not mis-parsed.
  obs::PlacementDecision none;
  std::istringstream other("{\"ev\":\"locbs.place\",\"task\":0}\n");
  const auto rec2 = obs::read_trace(other);
  ASSERT_EQ(rec2.size(), 1u);
  EXPECT_FALSE(obs::decision_from_record(rec2[0], none));
}

TEST(Provenance, ShortlistRecorderKeepsBestAndEnsuresWinner) {
  obs::ShortlistRecorder rec;
  for (std::size_t i = 0; i < obs::ShortlistRecorder::kMaxCandidates + 3;
       ++i) {
    obs::ProvCandidate c;
    c.finish = 100.0 - static_cast<double>(i);  // improving finishes
    c.start = c.finish - 1.0;
    c.procs = {static_cast<ProcId>(i)};
    rec.offer(c);
  }
  ASSERT_EQ(rec.entries().size(), obs::ShortlistRecorder::kMaxCandidates);
  for (std::size_t i = 1; i < rec.entries().size(); ++i)
    EXPECT_LE(rec.entries()[i - 1].finish, rec.entries()[i].finish);

  // The committed winner is inserted when the scan crowded it out.
  obs::ProvCandidate win;
  win.finish = 1000.0;
  win.start = 999.0;
  win.procs = {42};
  const std::size_t at = rec.ensure(win);
  ASSERT_LT(at, rec.entries().size());
  EXPECT_EQ(rec.entries()[at].procs, win.procs);
}

/// Runs LoC-MPS with a JSONL sink attached and parses the trace.
std::vector<obs::TraceRecord> traced_run(const TaskGraph& g,
                                         const Cluster& cluster,
                                         std::size_t threads,
                                         TaskId perturb = kNoTask) {
  LocMPSOptions opt;
  opt.threads = threads;
  opt.locbs.perturb_task = perturb;
  LocMPSScheduler sched(opt);
  std::ostringstream buf;
  obs::JsonlSink sink(buf);
  obs::MetricsRegistry reg;
  obs::ObsContext ctx{&reg, &sink};
  sched.attach_observability(&ctx);
  (void)sched.schedule(g, cluster);
  std::istringstream in(buf.str());
  return obs::read_trace(in);
}

TaskGraph small_graph(unsigned seed = 42) {
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 8;
  Rng rng(seed);
  return make_synthetic_dag(p, rng);
}

TEST(Provenance, EveryPlacementCarriesAConsistentDecision) {
  const TaskGraph g = small_graph();
  const Cluster cluster(8);
  const auto records = traced_run(g, cluster, 1);

  // Pair up place/decision records in stream order: the decision follows
  // its placement and agrees on the realized slot.
  std::size_t places = 0, decisions = 0;
  obs::TraceRecord last_place{};
  bool have_place = false;
  for (const auto& rec : records) {
    if (rec.ev == "locbs.place") {
      ++places;
      last_place = rec;
      have_place = true;
    } else if (rec.ev == "locbs.decision") {
      ++decisions;
      obs::PlacementDecision d;
      ASSERT_TRUE(obs::decision_from_record(rec, d));
      ASSERT_TRUE(have_place);
      EXPECT_EQ(static_cast<double>(d.task), last_place.num("task", -1.0));
      EXPECT_EQ(d.start, last_place.num("start", -1.0));
      EXPECT_EQ(d.finish, last_place.num("finish", -1.0));
      // The winner indexes the shortlist and reproduces the committed
      // slot. Top-level fields travel at %.12g, the shortlist at %.17g,
      // so compare at the trace's relative precision.
      ASSERT_LT(d.winner, d.shortlist.size());
      const auto& win = d.shortlist[d.winner];
      EXPECT_NEAR(win.start, d.start, 1e-9 * std::max(1.0, d.start));
      EXPECT_NEAR(win.finish, d.finish, 1e-9 * std::max(1.0, d.finish));
      EXPECT_EQ(win.procs.size(), d.np);
      EXPECT_GE(d.candidates_scored, d.shortlist.size());
      for (std::size_t i = 1; i < d.shortlist.size(); ++i)
        EXPECT_LE(d.shortlist[i - 1].finish, d.shortlist[i].finish);
      if (d.margin >= 0.0) EXPECT_GE(d.candidates_scored, 2u);
    }
  }
  EXPECT_GT(places, 0u);
  EXPECT_EQ(places, decisions);
}

TEST(Provenance, DecisionStreamIsBitIdenticalAcrossThreads) {
  const Cluster cluster(16);
  std::vector<std::pair<std::string, TaskGraph>> workloads;
  workloads.emplace_back("synthetic", small_graph(7));
  StrassenParams sp;
  sp.n = 512;
  sp.max_procs = 16;
  workloads.emplace_back("strassen", make_strassen(sp));
  TCEParams tp;
  tp.occupied = 8;
  tp.virt = 32;
  tp.max_procs = 16;
  workloads.emplace_back("ccsd t1 (8,32)", make_ccsd_t1(tp));
  for (const auto& [label, g] : workloads) {
    const auto ref = traced_run(g, cluster, 1);
    for (const std::size_t threads : {2u, 8u}) {
      const auto par = traced_run(g, cluster, threads);
      ASSERT_EQ(ref.size(), par.size())
          << label << " @" << threads << "t";
      for (std::size_t i = 0; i < ref.size(); ++i) {
        if (ref[i].ev != "locbs.decision") continue;
        obs::PlacementDecision a, b;
        ASSERT_TRUE(obs::decision_from_record(ref[i], a));
        ASSERT_TRUE(obs::decision_from_record(par[i], b));
        EXPECT_EQ(a.task, b.task) << label << " record " << i;
        EXPECT_EQ(a.start, b.start) << label << " record " << i;
        EXPECT_EQ(a.finish, b.finish) << label << " record " << i;
        EXPECT_EQ(a.winner, b.winner) << label << " record " << i;
        EXPECT_EQ(a.margin, b.margin) << label << " record " << i;
        EXPECT_EQ(a.candidates_scored, b.candidates_scored)
            << label << " record " << i;
        ASSERT_EQ(a.shortlist.size(), b.shortlist.size())
            << label << " record " << i;
        for (std::size_t c = 0; c < a.shortlist.size(); ++c) {
          EXPECT_EQ(a.shortlist[c].start, b.shortlist[c].start);
          EXPECT_EQ(a.shortlist[c].finish, b.shortlist[c].finish);
          EXPECT_EQ(a.shortlist[c].procs, b.shortlist[c].procs);
        }
      }
    }
  }
}

TEST(Provenance, PerturbHookAdoptsTheRunnerUp) {
  // A 16-processor cluster gives LoC-MPS varied allocation widths, so
  // placements have genuinely different processor subsets to choose from.
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 16;
  Rng rng(42);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster cluster(16);
  const auto base_records = traced_run(g, cluster, 1);
  const auto base =
      obs::final_decisions(base_records, g.num_tasks());

  // Perturb the first task whose final decision has a distinct runner-up;
  // its committed placement must change and the record must say so.
  TaskId victim = kNoTask;
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    if (base[t].valid() && base[t].margin >= 0.0) {
      victim = t;
      break;
    }
  ASSERT_NE(victim, kNoTask)
      << "workload produced no decision with a distinct runner-up";

  const auto pert_records = traced_run(g, cluster, 1, victim);
  const auto pert = obs::final_decisions(pert_records, g.num_tasks());
  ASSERT_TRUE(pert[victim].valid());
  EXPECT_TRUE(pert[victim].perturbed);
  const auto& a = base[victim].shortlist[base[victim].winner];
  const auto& b = pert[victim].shortlist[pert[victim].winner];
  EXPECT_TRUE(a.procs != b.procs || a.start != b.start)
      << "perturbation did not move task " << victim;
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    if (pert[t].valid() && t != victim) EXPECT_FALSE(pert[t].perturbed);
}

TEST(Provenance, JsonlSinkCapsLinesAndCountsDrops) {
  std::ostringstream buf;
  obs::JsonlSink sink(buf, /*max_lines=*/3);
  for (int i = 0; i < 5; ++i)
    sink.emit(obs::Event("e").with("i", i));
  EXPECT_EQ(sink.dropped(), 2u);
  std::istringstream in(buf.str());
  EXPECT_EQ(obs::read_trace(in).size(), 3u);
}

}  // namespace
}  // namespace locmps
