/// Schedule-quality tests: LoC-MPS against the exhaustive optimum on tiny
/// instances (every allocation vector realized by LoCBS) and against the
/// simulated-annealing reference on small ones.

#include <gtest/gtest.h>

#include <limits>

#include "schedulers/annealing.hpp"
#include "schedulers/loc_mps.hpp"
#include "schedulers/locbs.hpp"
#include "test_util.hpp"
#include "workloads/synthetic.hpp"

namespace locmps {
namespace {

/// Best LoCBS-realizable makespan over the full allocation grid.
double brute_force_best(const TaskGraph& g, const Cluster& c) {
  const std::size_t n = g.num_tasks();
  const std::size_t P = c.processors;
  const CommModel comm(c);
  Allocation np(n, 1);
  double best = std::numeric_limits<double>::infinity();
  while (true) {
    best = std::min(best, locbs(g, np, comm).makespan);
    // Odometer increment over [1, P]^n.
    std::size_t i = 0;
    while (i < n && np[i] == P) np[i++] = 1;
    if (i == n) break;
    ++np[i];
  }
  return best;
}

TaskGraph tiny_graph(std::uint64_t seed, double ccr) {
  SyntheticParams p;
  p.min_tasks = 4;
  p.max_tasks = 5;
  p.avg_degree = 2.0;
  p.ccr = ccr;
  p.max_procs = 3;
  p.amax = 8.0;
  Rng rng(seed);
  return make_synthetic_dag(p, rng);
}

class TinyOptimality
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(TinyOptimality, LocMPSNearExhaustiveOptimum) {
  const auto [seed, ccr] = GetParam();
  const TaskGraph g = tiny_graph(seed, ccr);
  const Cluster c(3);
  const double opt = brute_force_best(g, c);
  const double mps =
      LocMPSScheduler().schedule(g, c).estimated_makespan;
  EXPECT_GE(mps, opt - 1e-9);  // cannot beat the exhaustive search
  EXPECT_LE(mps, opt * 1.25)
      << "seed=" << seed << " ccr=" << ccr << " |V|=" << g.num_tasks();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TinyOptimality,
    ::testing::Combine(::testing::Values(71, 72, 73, 74, 75),
                       ::testing::Values(0.0, 1.0)));

TEST(TinyOptimality, Fig3InstanceIsSolvedExactly) {
  test::LinearSpeedup lin;
  TaskGraph g;
  g.add_task("T1", ExecutionProfile(lin, 40.0, 4));
  g.add_task("T2", ExecutionProfile(lin, 80.0, 4));
  const Cluster c(4);
  const double opt = brute_force_best(g, c);
  EXPECT_DOUBLE_EQ(opt, 30.0);
  EXPECT_DOUBLE_EQ(LocMPSScheduler().schedule(g, c).estimated_makespan, opt);
}

// ------------------------------------------------------------------ SA --
TEST(Annealing, ProducesValidSchedules) {
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 8;
  Rng rng(81);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster c(8);
  AnnealingOptions opt;
  opt.iterations = 500;
  const SchedulerResult r = AnnealingScheduler(opt).schedule(g, c);
  EXPECT_EQ(r.schedule.validate(g, CommModel(c)), "");
  // Boundary moves (np already 1 or at cap) are skipped without an
  // evaluation, so the count is below the proposal budget but well above
  // the restart count.
  EXPECT_GT(r.iterations, 250u);
  EXPECT_LE(r.iterations, 503u);
}

TEST(Annealing, DeterministicInSeed) {
  SyntheticParams p;
  p.ccr = 0.3;
  p.max_procs = 4;
  Rng rng(82);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster c(4);
  AnnealingOptions opt;
  opt.iterations = 300;
  const double a = AnnealingScheduler(opt).schedule(g, c).estimated_makespan;
  const double b = AnnealingScheduler(opt).schedule(g, c).estimated_makespan;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Annealing, FindsTinyOptimum) {
  const TaskGraph g = tiny_graph(71, 1.0);
  const Cluster c(3);
  AnnealingOptions opt;
  opt.iterations = 2000;
  const double sa = AnnealingScheduler(opt).schedule(g, c).estimated_makespan;
  EXPECT_NEAR(sa, brute_force_best(g, c), 1e-9);
}

TEST(Annealing, LocMPSWithinReachOfReference) {
  // On a mid-size graph the heuristic should stay within ~20% of a
  // 4000-evaluation annealing reference.
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 8;
  p.min_tasks = 15;
  p.max_tasks = 25;
  Rng rng(83);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster c(8);
  const double sa =
      AnnealingScheduler().schedule(g, c).estimated_makespan;
  const double mps = LocMPSScheduler().schedule(g, c).estimated_makespan;
  EXPECT_LE(mps, sa * 1.20);
}

}  // namespace
}  // namespace locmps
