#include "faults/recovery.hpp"

#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "network/comm_model.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "schedulers/loc_mps.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace locmps {
namespace {

TaskGraph workload(std::uint64_t seed) {
  SyntheticParams p;
  p.ccr = 0.4;
  p.max_procs = 8;
  p.min_tasks = 16;
  p.max_tasks = 24;
  Rng rng(seed);
  return make_synthetic_dag(p, rng);
}

/// A seeded plan whose onsets land inside the busy part of the schedule.
FaultPlan plan_for(const TaskGraph& g, const Cluster& c, double rate,
                   bool repairs, std::uint64_t seed) {
  const double base = LocMPSScheduler().schedule(g, c).estimated_makespan;
  FaultPlanParams prm;
  prm.fail_fraction = rate;
  prm.horizon_s = 0.5 * base;
  prm.repairs = repairs;
  prm.repair_delay_s = 0.3 * base;
  prm.seed = seed;
  return make_fault_plan(c.processors, prm);
}

/// Captures every event in a deterministic textual form. Unlike JsonlSink
/// there is no wall-clock "t" stamp, so two replays of the same run must
/// produce byte-identical streams.
class CollectingSink final : public obs::EventSink {
 public:
  void emit(const obs::Event& e) override {
    std::ostringstream os;
    os << e.name();
    for (const auto& [k, v] : e.fields()) {
      os << ' ' << k << '=';
      std::visit([&](const auto& x) { write(os, x); }, v);
    }
    lines.push_back(os.str());
  }
  std::vector<std::string> lines;

 private:
  static void write(std::ostream& os, bool b) { os << (b ? "T" : "F"); }
  static void write(std::ostream& os, std::int64_t i) { os << i; }
  static void write(std::ostream& os, double d) {
    os << std::setprecision(17) << d;
  }
  static void write(std::ostream& os, const std::string& s) { os << s; }
};

TEST(Recovery, FaultFreePlanCompletesInOneRound) {
  const TaskGraph g = workload(1);
  const Cluster c(8);
  const FaultPlan none(8);
  const RecoveryResult r = run_with_faults(g, c, none);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_EQ(r.kills, 0u);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.replans, 0u);
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_EQ(r.executed.validate(g, CommModel(c)), "");
}

TEST(Recovery, DegradedReplanSurvivesPermanentFailures) {
  const TaskGraph g = workload(2);
  const Cluster c(8);
  const FaultPlan plan = plan_for(g, c, 0.25, false, 11);
  ASSERT_FALSE(plan.empty());

  RecoveryOptions opt;
  opt.policy = RecoveryPolicy::kDegradedReplan;
  const RecoveryResult r = run_with_faults(g, c, plan, opt);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.executed.validate(g, CommModel(c)), "");
  EXPECT_GE(r.kills, 1u);
  EXPECT_GE(r.replans, 1u);
  EXPECT_GE(r.masked.count(), 1u);
  EXPECT_GE(r.makespan, r.planned_makespan);

  // Nothing may have computed through a dead window: every placement on a
  // never-repaired processor finished by that processor's onset.
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    const Placement& pl = r.executed.at(t);
    pl.procs.for_each([&](ProcId q) {
      const FaultEvent* e = plan.event_of(q);
      if (e != nullptr && e->repair_at == kNeverRepaired)
        EXPECT_LE(pl.finish, e->fail_at + 1e-9)
            << "task " << t << " ran on p" << q << " past its failure";
    });
  }
}

TEST(Recovery, RetryInPlaceRecoversOnRepairedProcessors) {
  const TaskGraph g = workload(2);
  const Cluster c(8);
  const FaultPlan plan = plan_for(g, c, 0.25, true, 11);

  RecoveryOptions opt;
  opt.policy = RecoveryPolicy::kRetryInPlace;
  const RecoveryResult r = run_with_faults(g, c, plan, opt);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.executed.validate(g, CommModel(c)), "");
  EXPECT_GE(r.kills, 1u);
  EXPECT_GE(r.retries, 1u);
  EXPECT_GT(r.backoff_seconds, 0.0);
  EXPECT_EQ(r.replans, 0u);       // this policy never replans
  EXPECT_EQ(r.masked.count(), 0u);  // and never masks
}

TEST(Recovery, RetryGivesUpWhenAProcessorNeverRepairs) {
  const TaskGraph g = workload(2);
  const Cluster c(8);
  const FaultPlan plan = plan_for(g, c, 0.25, false, 11);

  RecoveryOptions opt;
  opt.policy = RecoveryPolicy::kRetryInPlace;
  const RecoveryResult r = run_with_faults(g, c, plan, opt);
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("never repairs"), std::string::npos) << r.error;
}

TEST(Recovery, RetryGivesUpWhenRetriesAreExhausted) {
  // One 10 s task on a one-processor cluster whose only processor bounces
  // three times, each interval timed to kill the next attempt (retry k
  // restarts at repair + backoff_base_s * backoff_factor^(k-1)).
  const TaskGraph g = test::chain(1, 10.0, 1, 0.0);
  const Cluster c(1);
  const FaultPlan plan(1, {{0, 5.0, 6.0}, {0, 12.0, 13.0}, {0, 20.0, 21.0}});

  RecoveryOptions opt;
  opt.policy = RecoveryPolicy::kRetryInPlace;
  opt.max_retries = 2;
  const RecoveryResult r = run_with_faults(g, c, plan, opt);
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("max_retries"), std::string::npos) << r.error;
  EXPECT_EQ(r.kills, 3u);
  EXPECT_EQ(r.retries, 2u);
}

TEST(Recovery, RejectsMalformedOptions) {
  const TaskGraph g = test::chain(2, 5.0, 2, 0.0);
  const Cluster c(4);
  const FaultPlan plan(4, {{0, 1.0, 2.0}});

  auto expect_rejected = [&](RecoveryOptions opt, const char* needle) {
    try {
      run_with_faults(g, c, plan, opt);
      FAIL() << "expected invalid_argument mentioning '" << needle << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };

  RecoveryOptions opt;
  opt.max_retries = 0;
  expect_rejected(opt, "max_retries");

  opt = RecoveryOptions{};
  opt.backoff_base_s = -1.0;
  expect_rejected(opt, "backoff_base_s");

  opt = RecoveryOptions{};
  opt.backoff_factor = 0.0;
  expect_rejected(opt, "backoff_factor");

  opt = RecoveryOptions{};
  opt.min_procs = 5;  // cluster only has 4
  expect_rejected(opt, "min_procs");

  opt = RecoveryOptions{};
  opt.runtime_noise = 1.0;
  expect_rejected(opt, "runtime_noise");

  opt = RecoveryOptions{};
  opt.max_rounds = 0;
  expect_rejected(opt, "max_rounds");

  opt = RecoveryOptions{};
  opt.straggler_threshold = 0.5;  // must be 0 (off) or > 1
  expect_rejected(opt, "straggler_threshold");
}

TEST(Recovery, ReplanFailsStructurallyBelowMinimumWidth) {
  const TaskGraph g = test::chain(3, 5.0, 2, 0.0);
  const Cluster c(2);
  // Both processors die early and never come back.
  const FaultPlan plan(
      2, {{0, 1.0, kNeverRepaired}, {1, 2.0, kNeverRepaired}});

  RecoveryOptions opt;
  opt.policy = RecoveryPolicy::kDegradedReplan;
  const RecoveryResult r = run_with_faults(g, c, plan, opt);
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("minimum width"), std::string::npos) << r.error;
  EXPECT_EQ(r.masked.count(), 2u);
}

TEST(Recovery, ReplayIsDeterministic) {
  const TaskGraph g = workload(3);
  const Cluster c(8);
  const FaultPlan plan = plan_for(g, c, 0.25, true, 5);

  auto once = [&](RecoveryPolicy policy, CollectingSink* sink,
                  obs::MetricsRegistry* met) {
    obs::ObsContext ctx{met, sink};
    RecoveryOptions opt;
    opt.policy = policy;
    opt.obs = &ctx;
    return run_with_faults(g, c, plan, opt);
  };

  for (const RecoveryPolicy policy :
       {RecoveryPolicy::kDegradedReplan, RecoveryPolicy::kRetryInPlace}) {
    CollectingSink s1, s2;
    obs::MetricsRegistry m1, m2;
    const RecoveryResult a = once(policy, &s1, &m1);
    const RecoveryResult b = once(policy, &s2, &m2);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.makespan, b.makespan);  // bit-identical, not approximate
    EXPECT_EQ(a.kills, b.kills);
    EXPECT_EQ(a.rounds, b.rounds);
    ASSERT_EQ(s1.lines.size(), s2.lines.size());
    for (std::size_t i = 0; i < s1.lines.size(); ++i)
      ASSERT_EQ(s1.lines[i], s2.lines[i]) << "trace diverges at line " << i;
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      EXPECT_EQ(a.executed.at(t).start, b.executed.at(t).start);
      EXPECT_EQ(a.executed.at(t).finish, b.executed.at(t).finish);
      EXPECT_EQ(a.executed.at(t).procs, b.executed.at(t).procs);
    }
  }
}

TEST(Recovery, AccountingReconcilesAcrossAllThreeBooks) {
  const TaskGraph g = workload(2);
  const Cluster c(8);
  const FaultPlan plan = plan_for(g, c, 0.25, false, 11);

  std::ostringstream jsonl;
  obs::MetricsRegistry met;
  obs::JsonlSink sink(jsonl);
  obs::ObsContext ctx{&met, &sink};
  RecoveryOptions opt;
  opt.policy = RecoveryPolicy::kDegradedReplan;
  opt.obs = &ctx;
  const RecoveryResult r = run_with_faults(g, c, plan, opt);
  ASSERT_TRUE(r.completed) << r.error;

  std::istringstream in(jsonl.str());
  const auto records = obs::read_trace(in);
  const auto digest = obs::summarize_trace(records, g.num_tasks());
  const obs::MetricsSnapshot snap = met.snapshot();

  // Counters, decision trace, and RecoveryResult are three independently
  // maintained books of the same run; they must agree exactly.
  EXPECT_EQ(snap.counter("fault.kills"), static_cast<double>(r.kills));
  EXPECT_EQ(digest.fault_kills, r.kills);
  EXPECT_EQ(snap.counter("fault.transfer_timeouts"),
            static_cast<double>(r.transfer_timeouts));
  EXPECT_EQ(digest.fault_transfer_timeouts, r.transfer_timeouts);
  EXPECT_NEAR(snap.counter("fault.wasted_proc_seconds"),
              r.wasted_proc_seconds, 1e-9);
  EXPECT_NEAR(digest.fault_wasted_s, r.wasted_proc_seconds, 1e-9);
  EXPECT_EQ(snap.counter("recovery.retries"),
            static_cast<double>(r.retries));
  EXPECT_EQ(digest.recovery_retries, r.retries);
  EXPECT_EQ(snap.counter("recovery.replans"),
            static_cast<double>(r.replans));
  EXPECT_EQ(digest.recovery_replans, r.replans);
  EXPECT_EQ(snap.counter("recovery.masked_procs"),
            static_cast<double>(r.masked.count()));
  EXPECT_EQ(snap.counter("recovery.rounds"),
            static_cast<double>(r.rounds));
  EXPECT_EQ(snap.counter("fault.injected"),
            static_cast<double>(plan.events().size()));
  // The trace's fault windows are exactly the announced failures.
  EXPECT_EQ(digest.fault_windows.size(),
            static_cast<std::size_t>(snap.counter("fault.procs_failed")));
}

TEST(Recovery, JoinFaultPlanExposesSortedWindows) {
  const FaultPlan plan(4, {{3, 7.0, kNeverRepaired}, {1, 2.0, 5.0}});
  obs::ScheduleAnalysis a;
  join_fault_plan(a, plan);
  ASSERT_EQ(a.fault_windows.size(), 2u);
  EXPECT_EQ(a.fault_windows[0].proc, 1u);
  EXPECT_DOUBLE_EQ(a.fault_windows[0].fail_s, 2.0);
  EXPECT_DOUBLE_EQ(a.fault_windows[0].repair_s, 5.0);
  EXPECT_EQ(a.fault_windows[1].proc, 3u);
  EXPECT_DOUBLE_EQ(a.fault_windows[1].repair_s, -1.0);  // never repaired
}

}  // namespace
}  // namespace locmps
