/// Tests for the HTML/text schedule reports (obs/report.hpp): strict
/// XHTML well-formedness (parsed with the minimal XML parser from
/// test_util.hpp), escaping of hostile names, the blame-table bound —
/// and the end-to-end fig06 reconciliation required of the report: the
/// aggregate local/remote volumes printed in the HTML must match the
/// simulator's comm-model counters and the decision trace of the same
/// run.

#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "obs/analysis.hpp"
#include "obs/events.hpp"
#include "test_util.hpp"
#include "workloads/synthetic.hpp"

namespace locmps {
namespace {

/// Parses the numeric text content of the element with the given id.
double id_value(const test::Xml& root, std::string_view id) {
  const test::Xml* el = root.find_by_id(id);
  EXPECT_NE(el, nullptr) << "missing id " << id;
  if (el == nullptr) return -1.0;
  return std::strtod(el->text.c_str(), nullptr);
}

/// Two-task chain with one remote edge: enough to exercise every report
/// section (gantt, utilization, holes, locality, critical path, blame).
struct ReportFixture {
  TaskGraph g;
  Schedule s;
  Cluster cluster{4, 1e6};
  obs::ScheduleAnalysis a;

  explicit ReportFixture(std::string_view name_b = "b")
      : g(), s(2, 4) {
    const TaskId ta = g.add_task("a", test::serial(10.0, 4));
    const TaskId tb = g.add_task(std::string(name_b), test::serial(10.0, 4));
    g.add_edge(ta, tb, 5e6);
    s.place(ta, 0.0, 0.0, 10.0, ProcessorSet::of(4, {0}));
    s.place(tb, 15.0, 15.0, 25.0, ProcessorSet::of(4, {1}));
    a = obs::analyze_schedule(g, s, CommModel(cluster));
  }
};

TEST(Report, HtmlIsStrictWellFormedXhtml) {
  const ReportFixture f;
  obs::ReportOptions opt;
  opt.title = "unit fixture";
  opt.subtitle = "chain a -> b";
  const std::string html = obs::html_report(f.g, f.s, f.a, opt);
  const test::Xml root = test::parse_xhtml_report(html);
  EXPECT_EQ(root.tag, "html");
  EXPECT_EQ(root.count_tag("head"), 1u);
  EXPECT_EQ(root.count_tag("body"), 1u);
  EXPECT_GE(root.count_tag("svg"), 1u);   // the Gantt
  EXPECT_GE(root.count_tag("table"), 4u); // util, holes, locality, blame
  EXPECT_GE(root.count_tag("title"), 2u); // document + SVG tooltips
}

TEST(Report, AggregateVolumesMatchAnalysis) {
  const ReportFixture f;
  const test::Xml root =
      test::parse_xhtml_report(obs::html_report(f.g, f.s, f.a));
  // Byte values are printed with one decimal: absolute error <= 0.05.
  EXPECT_NEAR(id_value(root, "agg-total-bytes"), f.a.locality.total_bytes,
              0.06);
  EXPECT_NEAR(id_value(root, "agg-local-bytes"), f.a.locality.local_bytes,
              0.06);
  EXPECT_NEAR(id_value(root, "agg-remote-bytes"), f.a.locality.remote_bytes,
              0.06);
}

TEST(Report, EscapesHostileTaskNames) {
  const ReportFixture f("<evil> & \"friends\"");
  const std::string html = obs::html_report(f.g, f.s, f.a);
  EXPECT_EQ(html.find("<evil>"), std::string::npos);
  EXPECT_NE(html.find("&lt;evil&gt; &amp; &quot;friends&quot;"),
            std::string::npos);
  EXPECT_NO_THROW(test::parse_xhtml_report(html));
}

TEST(Report, XmlEscapeCoversAllFiveEntities) {
  EXPECT_EQ(obs::xml_escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
  EXPECT_EQ(obs::xml_escape("plain"), "plain");
}

TEST(Report, BlameTableRespectsTopN) {
  // Chain of 5 ping-ponging between two procs: every hop is a remote
  // 1 s transfer, so four tasks carry positive (data-bound) start delay.
  const TaskGraph g = test::chain(5, 10.0, 2, 1e6);
  Schedule s(5, 2);
  double t = 0.0;
  for (TaskId i = 0; i < 5; ++i) {
    const double start = i == 0 ? 0.0 : t + 1.0;  // 1 s transfer per hop
    s.place(i, start, start, start + 10.0,
            ProcessorSet::of(2, {static_cast<ProcId>(i % 2)}));
    t = start + 10.0;
  }
  const Cluster cl(2, 1e6);
  const auto a = obs::analyze_schedule(g, s, CommModel(cl));
  ASSERT_EQ(a.top_blame(10).size(), 4u);

  obs::ReportOptions few;
  few.top_blame = 2;
  const std::string html_few = obs::html_report(g, s, a, few);
  obs::ReportOptions many;
  many.top_blame = 10;
  const std::string html_many = obs::html_report(g, s, a, many);
  const std::size_t rows_few =
      test::parse_xhtml_report(html_few).count_tag("tr");
  const std::size_t rows_many =
      test::parse_xhtml_report(html_many).count_tag("tr");
  EXPECT_EQ(rows_many - rows_few, 2u);  // 4 blame rows vs 2
}

TEST(Report, TextSummaryMentionsEverySection) {
  const ReportFixture f;
  const std::string txt = obs::text_report(f.a);
  for (const char* needle :
       {"makespan", "utilization", "locality", "critical path",
        "start blame"}) {
    EXPECT_NE(txt.find(needle), std::string::npos) << needle;
  }
}

/// Acceptance check: on a fig06-style workload the HTML report's
/// aggregate local/remote volumes must exactly match the comm-model
/// counters from the decision trace of the same run.
TEST(Report, Fig06EndToEndReconciliation) {
  SyntheticParams p;
  p.ccr = 0.1;
  p.amax = 48;
  p.sigma = 2;
  Rng rng(20060903);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster cluster(32, p.bandwidth_Bps);

  // Instrumented run: decision trace captured in-memory.
  std::ostringstream trace_out;
  SchemeRun run;
  {
    obs::JsonlSink sink(trace_out);
    run = evaluate_scheme("loc-mps", g, cluster, SimOptions{}, &sink);
  }

  // Trace digest of the same run.
  std::istringstream trace_in(trace_out.str());
  const auto records = obs::read_trace(trace_in);
  ASSERT_FALSE(records.empty());
  const auto digest = obs::summarize_trace(records, g.num_tasks());
  // LoC-MPS refines over several passes; every pass traces its placements.
  EXPECT_GE(digest.place_events, g.num_tasks());

  // Analyzer totals == simulator counters == trace, to rounding.
  const auto& lt = run.analysis.locality;
  const double tol = 1e-9 * std::max(1.0, lt.remote_bytes);
  EXPECT_NEAR(lt.remote_bytes, run.counters.counter("sim.remote_bytes"), tol);
  EXPECT_NEAR(lt.remote_bytes, digest.transfer_bytes, tol);
  EXPECT_NEAR(lt.remote_bytes, digest.final_remote_bytes, tol);
  EXPECT_NEAR(lt.local_bytes, digest.final_local_bytes,
              1e-9 * std::max(1.0, lt.local_bytes));
  EXPECT_EQ(static_cast<double>(lt.local_edges),
            run.counters.counter("sim.local_edges"));
  EXPECT_EQ(static_cast<double>(lt.partial_edges + lt.remote_edges),
            run.counters.counter("sim.transfers"));
  EXPECT_EQ(digest.transfer_events,
            static_cast<std::size_t>(run.counters.counter("sim.transfers")));

  // And the HTML report prints those same aggregates (1-decimal fixed).
  const std::string html = obs::html_report(g, run.schedule, run.analysis);
  const test::Xml root = test::parse_xhtml_report(html);
  EXPECT_NEAR(id_value(root, "agg-remote-bytes"),
              run.counters.counter("sim.remote_bytes"), 0.06);
  EXPECT_NEAR(id_value(root, "agg-local-bytes"), lt.local_bytes, 0.06);
  EXPECT_NEAR(id_value(root, "agg-total-bytes"), lt.total_bytes, 0.06);
}

}  // namespace
}  // namespace locmps
