#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace locmps {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform(3.0, 5.5);
    EXPECT_GE(x, 3.0);
    EXPECT_LT(x, 5.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform(0.0, 60.0);
  EXPECT_NEAR(sum / n, 30.0, 0.5);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng r(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng r(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(42, 42), 42);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(9);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += c1.next() == c2.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(9), p2(9);
  Rng a = p1.split(4);
  Rng b = p2.split(4);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  Rng r(1);
  std::vector<int> v{1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), r);  // must compile and not crash
  EXPECT_EQ(v.size(), 5u);
}

}  // namespace
}  // namespace locmps
