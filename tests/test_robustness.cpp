#include "faults/robustness.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "faults/recovery.hpp"
#include "network/comm_model.hpp"
#include "obs/analysis.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "schedulers/loc_mps.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"
#include "workloads/strassen.hpp"
#include "workloads/synthetic.hpp"

namespace locmps {
namespace {

TaskGraph workload(std::uint64_t seed) {
  SyntheticParams p;
  p.ccr = 0.4;
  p.max_procs = 8;
  p.min_tasks = 16;
  p.max_tasks = 24;
  Rng rng(seed);
  return make_synthetic_dag(p, rng);
}

/// A perturbation family whose windows land inside the schedule.
RobustnessOptions family_for(double nominal, std::uint64_t seed,
                             std::size_t samples = 8) {
  RobustnessOptions opt;
  opt.samples = samples;
  opt.perturb.seed = seed;
  opt.perturb.slow_factor = 4.0;
  opt.perturb.horizon_s = nominal;
  opt.perturb.slow_duration_s = 0.5 * nominal;
  opt.perturb.link_windows = 2;
  opt.perturb.link_duration_s = 0.2 * nominal;
  return opt;
}

/// Same deterministic textual event capture as tests/test_recovery.cpp.
class CollectingSink final : public obs::EventSink {
 public:
  void emit(const obs::Event& e) override {
    std::ostringstream os;
    os << e.name();
    for (const auto& [k, v] : e.fields()) {
      os << ' ' << k << '=';
      std::visit([&](const auto& x) { write(os, x); }, v);
    }
    lines.push_back(os.str());
  }
  std::vector<std::string> lines;

 private:
  static void write(std::ostream& os, bool b) { os << (b ? "T" : "F"); }
  static void write(std::ostream& os, std::int64_t i) { os << i; }
  static void write(std::ostream& os, double d) {
    os << std::setprecision(17) << d;
  }
  static void write(std::ostream& os, const std::string& s) { os << s; }
};

/// Forwards every event to both sinks (JSONL digest + textual capture of
/// one run).
class FanoutSink final : public obs::EventSink {
 public:
  FanoutSink(obs::EventSink* a, obs::EventSink* b) : a_(a), b_(b) {}
  void emit(const obs::Event& e) override {
    a_->emit(e);
    b_->emit(e);
  }

 private:
  obs::EventSink* a_;
  obs::EventSink* b_;
};

// ---------------------------------------------------------------------------
// Monte-Carlo robustness scoring.

TEST(Robustness, RejectsMalformedInputs) {
  const TaskGraph g = workload(1);
  const Cluster c(8);
  const CommModel m(c);
  const SchedulerResult plan = LocMPSScheduler().schedule(g, c);

  RobustnessOptions zero;
  zero.samples = 0;
  EXPECT_THROW(score_robustness(g, plan.schedule, m, zero),
               std::invalid_argument);

  Schedule incomplete(g.num_tasks(), c.processors);
  EXPECT_THROW(score_robustness(g, incomplete, m),
               std::invalid_argument);

  RobustnessOptions bad;
  bad.perturb.slow_factor = 0.5;
  EXPECT_THROW(score_robustness(g, plan.schedule, m, bad),
               std::invalid_argument);
}

TEST(Robustness, ReportsAConsistentDistribution) {
  const TaskGraph g = workload(2);
  const Cluster c(8);
  const CommModel m(c);
  const SchedulerResult plan = LocMPSScheduler().schedule(g, c);
  const double nominal = simulate_execution(g, plan.schedule, m).makespan;

  const RobustnessReport r =
      score_robustness(g, plan.schedule, m, family_for(nominal, 3, 16));
  EXPECT_EQ(r.samples, 16u);
  ASSERT_EQ(r.makespans.size(), 16u);
  EXPECT_DOUBLE_EQ(r.nominal_makespan, nominal);

  const double lo = *std::min_element(r.makespans.begin(), r.makespans.end());
  const double hi = *std::max_element(r.makespans.begin(), r.makespans.end());
  EXPECT_DOUBLE_EQ(r.worst, hi);
  EXPECT_GE(r.p95, r.median.median);
  EXPECT_LE(r.p95, r.worst);
  EXPECT_GE(r.mean, lo);
  EXPECT_LE(r.mean, hi);
  EXPECT_GE(r.median.lo, lo);
  EXPECT_LE(r.median.hi, hi);
  EXPECT_DOUBLE_EQ(r.p95_over_nominal, r.p95 / nominal);

  // Performance faults only ever delay this work-conserving replay.
  EXPECT_GE(lo, nominal);
  EXPECT_GT(r.stretch_seconds, 0.0);
}

TEST(Robustness, ScoreIsAPureFunctionOfItsInputs) {
  const TaskGraph g = workload(3);
  const Cluster c(8);
  const CommModel m(c);
  const SchedulerResult plan = LocMPSScheduler().schedule(g, c);
  const double nominal = simulate_execution(g, plan.schedule, m).makespan;

  const RobustnessOptions opt = family_for(nominal, 9);
  const RobustnessReport a = score_robustness(g, plan.schedule, m, opt);
  const RobustnessReport b = score_robustness(g, plan.schedule, m, opt);
  ASSERT_EQ(a.makespans.size(), b.makespans.size());
  for (std::size_t i = 0; i < a.makespans.size(); ++i)
    EXPECT_EQ(a.makespans[i], b.makespans[i]);  // bit-identical
  EXPECT_EQ(a.p95, b.p95);
  EXPECT_EQ(a.worst, b.worst);
  EXPECT_EQ(a.median.median, b.median.median);
  EXPECT_EQ(a.stretch_seconds, b.stretch_seconds);

  // A different family seed draws a different ensemble.
  RobustnessOptions other = opt;
  other.perturb.seed = 10;
  const RobustnessReport d = score_robustness(g, plan.schedule, m, other);
  bool differs = false;
  for (std::size_t i = 0; !differs && i < a.makespans.size(); ++i)
    differs = a.makespans[i] != d.makespans[i];
  EXPECT_TRUE(differs) << "the ensemble seed does not matter";
}

TEST(Robustness, ObservabilityReconcilesWithTheReport) {
  const TaskGraph g = workload(4);
  const Cluster c(8);
  const CommModel m(c);
  const SchedulerResult plan = LocMPSScheduler().schedule(g, c);
  const double nominal = simulate_execution(g, plan.schedule, m).makespan;

  std::ostringstream jsonl;
  obs::MetricsRegistry met;
  obs::JsonlSink sink(jsonl);
  obs::ObsContext ctx{&met, &sink};
  RobustnessOptions opt = family_for(nominal, 5);
  opt.obs = &ctx;
  const RobustnessReport r = score_robustness(g, plan.schedule, m, opt);

  const obs::MetricsSnapshot snap = met.snapshot();
  EXPECT_EQ(snap.counter("robust.samples"), static_cast<double>(r.samples));
  EXPECT_EQ(snap.counter("robust.nominal"), r.nominal_makespan);
  EXPECT_EQ(snap.counter("robust.median"), r.median.median);
  EXPECT_EQ(snap.counter("robust.p95"), r.p95);
  EXPECT_EQ(snap.counter("robust.worst"), r.worst);

  std::istringstream in(jsonl.str());
  const auto digest = obs::summarize_trace(obs::read_trace(in), g.num_tasks());
  EXPECT_EQ(digest.robust_samples, r.samples);
}

TEST(Robustness, JoinsFillTheAnalysisPanels) {
  RobustnessReport r;
  r.samples = 4;
  r.nominal_makespan = 100.0;
  r.mean = 110.0;
  r.worst = 140.0;
  r.p95 = 130.0;
  r.median.median = 105.0;
  r.median.lo = 101.0;
  r.median.hi = 120.0;
  r.p95_over_nominal = 1.3;
  obs::ScheduleAnalysis a;
  join_robustness(a, r);
  EXPECT_EQ(a.robustness.samples, 4u);
  EXPECT_DOUBLE_EQ(a.robustness.p95, 130.0);
  EXPECT_DOUBLE_EQ(a.robustness.p95_over_nominal, 1.3);

  const PerturbationPlan plan(4, {{3, 7.0, 9.0, 2.5}, {1, 2.0, 5.0, 4.0}},
                              {});
  join_perturbation(a, plan);
  ASSERT_EQ(a.slowdown_windows.size(), 2u);
  EXPECT_EQ(a.slowdown_windows[0].proc, 1u);  // sorted by onset
  EXPECT_DOUBLE_EQ(a.slowdown_windows[0].begin_s, 2.0);
  EXPECT_DOUBLE_EQ(a.slowdown_windows[0].factor, 4.0);
  EXPECT_EQ(a.slowdown_windows[1].proc, 3u);
}

// ---------------------------------------------------------------------------
// Straggler detection and mitigation inside run_with_faults.

struct StragglerRun {
  RecoveryResult result;
  obs::TraceSummary digest;
  obs::MetricsSnapshot snap;
  std::vector<std::string> trace;
};

StragglerRun run_stragglers(const TaskGraph& g, const Cluster& c,
                            const PerturbationPlan& perturb,
                            StragglerMitigation mitigation,
                            std::size_t threads = 1) {
  std::ostringstream jsonl;
  CollectingSink collect;
  obs::MetricsRegistry met;
  obs::JsonlSink js(jsonl);
  FanoutSink sink(&js, &collect);
  obs::ObsContext ctx{&met, &sink};
  RecoveryOptions opt;
  opt.perturb = &perturb;
  opt.straggler_threshold = 1.5;
  opt.straggler_mitigation = mitigation;
  opt.planner.threads = threads;
  opt.obs = &ctx;
  StragglerRun out;
  out.result = run_with_faults(g, c, FaultPlan(c.processors), opt);
  std::istringstream in(jsonl.str());
  out.digest = obs::summarize_trace(obs::read_trace(in), g.num_tasks());
  out.snap = met.snapshot();
  out.trace = collect.lines;
  return out;
}

/// A slowdown script that reliably creates stragglers: half the cluster
/// runs 5x slower across the busy part of the schedule.
PerturbationPlan stragglers_for(const TaskGraph& g, const Cluster& c,
                                std::uint64_t seed) {
  const double base = LocMPSScheduler().schedule(g, c).estimated_makespan;
  PerturbationParams prm;
  prm.slow_fraction = 0.5;
  prm.slow_factor = 5.0;
  prm.horizon_s = 0.6 * base;
  prm.slow_duration_s = 0.8 * base;
  prm.seed = seed;
  return make_perturbation_plan(c.processors, g.num_tasks(), prm);
}

TEST(Straggler, MitigationAccountingReconcilesAcrossAllThreeBooks) {
  const TaskGraph g = workload(7);
  const Cluster c(16);
  const PerturbationPlan perturb = stragglers_for(g, c, 31);

  for (const StragglerMitigation mit :
       {StragglerMitigation::kSpeculate, StragglerMitigation::kReplan}) {
    const StragglerRun r = run_stragglers(g, c, perturb, mit);
    const RecoveryResult& res = r.result;
    ASSERT_TRUE(res.completed) << res.error;
    ASSERT_GT(res.stragglers, 0u)
        << "the script produced no stragglers; the test proves nothing";

    // Counters, decision trace, and RecoveryResult are three independently
    // maintained books of the same run; they must agree exactly.
    EXPECT_EQ(r.snap.counter("mitigation.stragglers"),
              static_cast<double>(res.stragglers));
    EXPECT_EQ(r.digest.mitigation_stragglers, res.stragglers);
    EXPECT_EQ(r.snap.counter("mitigation.speculations"),
              static_cast<double>(res.speculations));
    EXPECT_EQ(r.digest.mitigation_speculations, res.speculations);
    EXPECT_EQ(res.spec_wins + res.spec_losses, res.speculations);
    EXPECT_EQ(r.snap.counter("mitigation.spec_wins"),
              static_cast<double>(res.spec_wins));
    EXPECT_EQ(r.snap.counter("mitigation.spec_losses"),
              static_cast<double>(res.spec_losses));
    EXPECT_EQ(r.snap.counter("mitigation.replans"),
              static_cast<double>(res.straggler_replans));
    EXPECT_EQ(r.digest.mitigation_replans, res.straggler_replans);
    EXPECT_NEAR(r.snap.counter("mitigation.wasted_seconds"),
                res.mitigation_wasted_seconds, 1e-9);
    EXPECT_NEAR(r.digest.mitigation_wasted_s, res.mitigation_wasted_seconds,
                1e-9);
    if (mit == StragglerMitigation::kSpeculate) {
      EXPECT_EQ(res.straggler_replans, 0u);
      EXPECT_GT(res.speculations, 0u);
    } else {
      EXPECT_EQ(res.speculations, 0u);
      EXPECT_GT(res.straggler_replans, 0u);
    }

    // The recovered execution is complete and the realized makespan covers
    // the clean plan (slowdowns only ever delay a work-conserving replay).
    EXPECT_GE(res.makespan, res.planned_makespan - 1e-9);
  }
}

TEST(Straggler, MitigatedRunIsBitIdenticalAcrossThreadCounts) {
  // The planner's speculative probe fan-out must not leak into the
  // recovery loop: threads 1, 2 and 8 plan, detect, mitigate and replay
  // identically (the determinism contract of docs/parallelism.md extended
  // to the performance-fault path).
  StrassenParams sp;
  sp.levels = 2;
  const TaskGraph graphs[] = {workload(6), make_strassen(sp)};
  for (const TaskGraph& g : graphs) {
    const Cluster c(8);
    const PerturbationPlan perturb = stragglers_for(g, c, 23);
    for (const StragglerMitigation mit :
         {StragglerMitigation::kSpeculate, StragglerMitigation::kReplan}) {
      const StragglerRun base = run_stragglers(g, c, perturb, mit, 1);
      ASSERT_TRUE(base.result.completed) << base.result.error;
      for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
        const StragglerRun r = run_stragglers(g, c, perturb, mit, threads);
        EXPECT_EQ(r.result.makespan, base.result.makespan)
            << "threads=" << threads;
        EXPECT_EQ(r.result.stragglers, base.result.stragglers);
        EXPECT_EQ(r.result.speculations, base.result.speculations);
        EXPECT_EQ(r.result.straggler_replans,
                  base.result.straggler_replans);
        EXPECT_EQ(r.result.mitigation_wasted_seconds,
                  base.result.mitigation_wasted_seconds);
        for (TaskId t = 0; t < g.num_tasks(); ++t) {
          EXPECT_EQ(r.result.executed.at(t).start,
                    base.result.executed.at(t).start);
          EXPECT_EQ(r.result.executed.at(t).finish,
                    base.result.executed.at(t).finish);
          EXPECT_EQ(r.result.executed.at(t).procs,
                    base.result.executed.at(t).procs);
        }
        ASSERT_EQ(r.trace.size(), base.trace.size()) << "threads=" << threads;
        for (std::size_t i = 0; i < r.trace.size(); ++i)
          ASSERT_EQ(r.trace[i], base.trace[i])
              << "trace diverges at line " << i << " with threads=" << threads;
      }
    }
  }
}

TEST(Straggler, EachStragglerIsMitigatedAtMostOnce) {
  const TaskGraph g = workload(7);
  const Cluster c(16);
  const PerturbationPlan perturb = stragglers_for(g, c, 31);
  const StragglerRun r =
      run_stragglers(g, c, perturb, StragglerMitigation::kSpeculate);
  ASSERT_TRUE(r.result.completed) << r.result.error;
  ASSERT_GT(r.result.stragglers, 0u);
  // Convergence: every detected straggler is mitigated exactly once, so
  // rounds are bounded by stragglers + the final clean round.
  EXPECT_EQ(r.result.speculations, r.result.stragglers);
  EXPECT_LE(r.result.rounds, r.result.stragglers + 1);
}

TEST(Straggler, SpeculativeCopyWinsOnAnIdleCleanProcessor) {
  // Two serial tasks in a chain on a two-processor cluster; whichever
  // processor the planner picks runs 4x slower for the whole horizon. The
  // first-finisher race is hand-computable: each straggler's copy launches
  // on the idle clean processor, runs at full speed, and wins.
  const TaskGraph g = test::chain(2, 10.0, 1);
  const Cluster c(2, 100.0);
  const SchedulerResult plan = LocMPSScheduler().schedule(g, c);
  const ProcId slow = plan.schedule.at(0).procs.first();
  const PerturbationPlan perturb(2, {{slow, 0.0, 1000.0, 4.0}}, {});

  const StragglerRun r =
      run_stragglers(g, c, perturb, StragglerMitigation::kSpeculate);
  const RecoveryResult& res = r.result;
  ASSERT_TRUE(res.completed) << res.error;
  EXPECT_GT(res.stragglers, 0u);
  EXPECT_EQ(res.speculations, res.stragglers);
  EXPECT_GT(res.spec_wins, 0u);
  EXPECT_GT(res.mitigation_wasted_seconds, 0.0);

  // The adopted copies run on the clean processor and launch no earlier
  // than their detection instants (1.5 x the 10 s modeled time).
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    const Placement& pe = res.executed.at(t);
    if (pe.procs.contains(slow)) continue;  // never mitigated
    EXPECT_GE(pe.start, 15.0);
  }

  // Mitigation beats riding out the slowdown: the unmitigated perturbed
  // replay stretches every task 4x.
  RecoveryOptions off;
  off.perturb = &perturb;
  const RecoveryResult raw =
      run_with_faults(g, c, FaultPlan(c.processors), off);
  ASSERT_TRUE(raw.completed) << raw.error;
  EXPECT_LT(res.makespan, raw.makespan);
}

}  // namespace
}  // namespace locmps
