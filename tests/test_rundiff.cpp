/// Differential run attribution (obs/rundiff.hpp): self-diffs are exactly
/// zero, the divergence taxonomy classifies hand-built views correctly,
/// and a single seeded LoCBS placement flip is attributed back to that
/// task's decision record — deterministically at every thread count.

#include "obs/rundiff.hpp"

#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/analysis.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "schedulers/loc_mps.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace locmps {
namespace {

std::vector<obs::TraceRecord> traced_run(const TaskGraph& g,
                                         const Cluster& cluster,
                                         std::size_t threads,
                                         TaskId perturb = kNoTask) {
  LocMPSOptions opt;
  opt.threads = threads;
  opt.locbs.perturb_task = perturb;
  LocMPSScheduler sched(opt);
  std::ostringstream buf;
  obs::JsonlSink sink(buf);
  obs::MetricsRegistry reg;
  obs::ObsContext ctx{&reg, &sink};
  sched.attach_observability(&ctx);
  (void)sched.schedule(g, cluster);
  std::istringstream in(buf.str());
  return obs::read_trace(in);
}

TaskGraph small_graph(unsigned seed = 42) {
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 8;
  Rng rng(seed);
  return make_synthetic_dag(p, rng);
}

TEST(RunDiff, SelfDiffIsExactlyZero) {
  const TaskGraph g = small_graph();
  const Cluster cluster(8);
  const auto records = traced_run(g, cluster, 1);
  const auto v = obs::run_view(records, g.num_tasks());
  EXPECT_GT(v.makespan, 0.0);

  const auto d = obs::diff_runs(g, v, v);
  EXPECT_EQ(d.delta, 0.0);
  EXPECT_TRUE(d.diverged.empty());
  EXPECT_TRUE(d.attribution.empty());
  EXPECT_EQ(d.attributed_fraction, 0.0);

  std::ostringstream text;
  obs::print_diff(text, g, v, v, d);
  EXPECT_NE(text.str().find("identical"), std::string::npos);
  std::ostringstream json;
  obs::write_diff_json(json, g, v, v, d);
  EXPECT_NE(json.str().find("\"delta\":0"), std::string::npos);
}

TEST(RunDiff, TaskCountMismatchThrows) {
  const TaskGraph g = small_graph();
  obs::RunView v;
  v.tasks.resize(g.num_tasks() + 1);
  EXPECT_THROW(obs::diff_runs(g, v, v), std::invalid_argument);
}

/// Two-task chain views for taxonomy unit tests: a â†’ b, both placed.
struct ViewPair {
  TaskGraph g;
  obs::RunView a, b;
};

ViewPair chain_views() {
  ViewPair vp;
  const auto prof = test::profile({10.0, 5.0});
  const TaskId t0 = vp.g.add_task("a", prof);
  const TaskId t1 = vp.g.add_task("b", prof);
  vp.g.add_edge(t0, t1, 1024.0);
  auto mk = [](std::size_t np, double start, double finish,
               std::vector<ProcId> procs, double remote) {
    obs::TaskRun r;
    r.placed = true;
    r.np = np;
    r.busy_from = start;
    r.start = start;
    r.finish = finish;
    r.remote_bytes = remote;
    r.procs = std::move(procs);
    return r;
  };
  vp.a.tasks = {mk(1, 0.0, 10.0, {0}, 0.0), mk(1, 10.0, 20.0, {0}, 0.0)};
  vp.a.makespan = 20.0;
  vp.b = vp.a;
  vp.b.makespan = 20.0;
  return vp;
}

TEST(RunDiff, TaxonomyClassifiesEachKind) {
  {  // width: allocation size changed — always a root cause
    ViewPair vp = chain_views();
    vp.b.tasks[0].np = 2;
    vp.b.tasks[0].procs = {0, 1};
    const auto d = obs::diff_runs(vp.g, vp.a, vp.b);
    ASSERT_FALSE(d.diverged.empty());
    EXPECT_EQ(d.diverged[0].task, 0u);
    EXPECT_EQ(d.diverged[0].kind, obs::DivergenceKind::kWidth);
    EXPECT_TRUE(d.diverged[0].root);
  }
  {  // placement: same width, different processor set
    ViewPair vp = chain_views();
    vp.b.tasks[0].procs = {1};
    const auto d = obs::diff_runs(vp.g, vp.a, vp.b);
    ASSERT_FALSE(d.diverged.empty());
    EXPECT_EQ(d.diverged[0].kind, obs::DivergenceKind::kPlacement);
  }
  {  // start-shift: same processors, later start
    ViewPair vp = chain_views();
    vp.b.tasks[1].start = 12.0;
    vp.b.tasks[1].busy_from = 12.0;
    vp.b.tasks[1].finish = 22.0;
    vp.b.makespan = 22.0;
    const auto d = obs::diff_runs(vp.g, vp.a, vp.b);
    ASSERT_EQ(d.diverged.size(), 1u);
    EXPECT_EQ(d.diverged[0].task, 1u);
    EXPECT_EQ(d.diverged[0].kind, obs::DivergenceKind::kStartShift);
  }
  {  // redist: same slot, different remote volume
    ViewPair vp = chain_views();
    vp.b.tasks[1].remote_bytes = 512.0;
    const auto d = obs::diff_runs(vp.g, vp.a, vp.b);
    ASSERT_EQ(d.diverged.size(), 1u);
    EXPECT_EQ(d.diverged[0].kind, obs::DivergenceKind::kRedist);
  }
  {  // drift: same slot and volume, finish moved
    ViewPair vp = chain_views();
    vp.b.tasks[1].finish = 21.0;
    vp.b.makespan = 21.0;
    const auto d = obs::diff_runs(vp.g, vp.a, vp.b);
    ASSERT_EQ(d.diverged.size(), 1u);
    EXPECT_EQ(d.diverged[0].kind, obs::DivergenceKind::kDrift);
  }
}

TEST(RunDiff, InducedDivergenceBlamesItsRoot) {
  // Task 0 moves (placement root); task 1's start shift is induced by it
  // and must carry task 0 as its source.
  ViewPair vp = chain_views();
  vp.b.tasks[0].procs = {1};
  vp.b.tasks[0].finish = 11.0;
  vp.b.tasks[1].start = 11.0;
  vp.b.tasks[1].busy_from = 11.0;
  vp.b.tasks[1].finish = 21.0;
  vp.b.makespan = 21.0;
  const auto d = obs::diff_runs(vp.g, vp.a, vp.b);
  ASSERT_EQ(d.diverged.size(), 2u);
  EXPECT_TRUE(d.diverged[0].root);
  EXPECT_FALSE(d.diverged[1].root);
  EXPECT_EQ(d.diverged[1].source, 0u);
  ASSERT_FALSE(d.attribution.empty());
  EXPECT_EQ(d.attribution[0].task, 0u);
  EXPECT_EQ(d.attribution[0].fraction, 1.0);
  // Chain runs from the makespan task down to the root.
  ASSERT_GE(d.attribution[0].chain.size(), 2u);
  EXPECT_EQ(d.attribution[0].chain.front(), 1u);
  EXPECT_EQ(d.attribution[0].chain.back(), 0u);
}

TEST(RunDiff, SeededFlipIsAttributedToItsDecision) {
  // 16 processors: varied allocation widths leave room for distinct
  // runner-up subsets (see test_provenance.cpp).
  const Cluster cluster(16);
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 16;
  Rng rng(42);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const auto base_records = traced_run(g, cluster, 1);
  const auto base = obs::run_view(base_records, g.num_tasks());
  const auto decisions =
      obs::final_decisions(base_records, g.num_tasks());

  // Scan for a seeded flip that actually changes the makespan: perturb
  // each task with a distinct runner-up until the realized schedule
  // diverges. Contract under test (ISSUE): the diff attributes >= 90% of
  // the makespan delta to the perturbed task's decision record.
  TaskId flipped = kNoTask;
  obs::RunDiff diff;
  obs::RunView cand;
  for (TaskId t = 0; t < g.num_tasks() && flipped == kNoTask; ++t) {
    if (!decisions[t].valid() || decisions[t].margin < 0.0) continue;
    const auto records = traced_run(g, cluster, 1, t);
    const auto v = obs::run_view(records, g.num_tasks());
    if (v.makespan == base.makespan) continue;
    flipped = t;
    cand = v;
    diff = obs::diff_runs(g, base, cand);
  }
  ASSERT_NE(flipped, kNoTask)
      << "no seeded flip changed the makespan on this workload";

  EXPECT_NE(diff.delta, 0.0);
  ASSERT_FALSE(diff.attribution.empty());
  EXPECT_EQ(diff.attribution[0].task, flipped);
  EXPECT_GE(diff.attribution[0].fraction, 0.9);
  EXPECT_GE(diff.attributed_fraction, 0.9);
  EXPECT_EQ(diff.attribution[0].chain.back(), flipped);

  // The perturbed run's trace marks exactly the flipped decision.
  {
    const auto records = traced_run(g, cluster, 1, flipped);
    const auto pert = obs::final_decisions(records, g.num_tasks());
    ASSERT_TRUE(pert[flipped].valid());
    EXPECT_TRUE(pert[flipped].perturbed);
  }

  // Determinism: the same diff falls out at every thread count, on both
  // sides of the comparison.
  for (const std::size_t threads : {2u, 8u}) {
    const auto a =
        obs::run_view(traced_run(g, cluster, threads), g.num_tasks());
    const auto b = obs::run_view(traced_run(g, cluster, threads, flipped),
                                 g.num_tasks());
    const auto d = obs::diff_runs(g, a, b);
    EXPECT_EQ(d.delta, diff.delta) << threads << " threads";
    ASSERT_EQ(d.attribution.size(), diff.attribution.size())
        << threads << " threads";
    EXPECT_EQ(d.attribution[0].task, diff.attribution[0].task)
        << threads << " threads";
    EXPECT_EQ(d.attribution[0].share, diff.attribution[0].share)
        << threads << " threads";
    ASSERT_EQ(d.diverged.size(), diff.diverged.size())
        << threads << " threads";
    for (std::size_t i = 0; i < d.diverged.size(); ++i) {
      EXPECT_EQ(d.diverged[i].task, diff.diverged[i].task);
      EXPECT_EQ(d.diverged[i].kind, diff.diverged[i].kind);
    }
  }

  // The text and JSON renderings name the culprit.
  std::ostringstream text;
  obs::print_diff(text, g, base, cand, diff);
  EXPECT_NE(text.str().find(g.task(flipped).name), std::string::npos);
  std::ostringstream json;
  obs::write_diff_json(json, g, base, cand, diff);
  EXPECT_NE(json.str().find("\"attribution\""), std::string::npos);
}

}  // namespace
}  // namespace locmps
