#include "schedule/schedule.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace locmps {
namespace {

using test::serial;

TEST(Schedule, PlaceAndQuery) {
  Schedule s(2, 4);
  EXPECT_FALSE(s.complete());
  s.place(0, 0.0, 0.0, 5.0, ProcessorSet::of(4, {0}));
  s.place(1, 5.0, 6.0, 10.0, ProcessorSet::of(4, {0, 1}));
  EXPECT_TRUE(s.complete());
  EXPECT_DOUBLE_EQ(s.makespan(), 10.0);
  EXPECT_EQ(s.at(1).np(), 2u);
  EXPECT_DOUBLE_EQ(s.at(1).busy_from, 5.0);
}

TEST(Schedule, PlaceValidatesArguments) {
  Schedule s(1, 4);
  EXPECT_THROW(s.place(5, 0, 0, 1, ProcessorSet::of(4, {0})),
               std::out_of_range);
  EXPECT_THROW(s.place(0, 2, 1, 3, ProcessorSet::of(4, {0})),
               std::invalid_argument);  // busy_from > start
  EXPECT_THROW(s.place(0, 0, 2, 1, ProcessorSet::of(4, {0})),
               std::invalid_argument);  // start > finish
  EXPECT_THROW(s.place(0, 0, 0, 1, ProcessorSet(4)),
               std::invalid_argument);  // empty procs
}

TEST(Schedule, BusyAreaAndUtilization) {
  Schedule s(2, 2);
  s.place(0, 0, 0, 4, ProcessorSet::of(2, {0}));
  s.place(1, 0, 0, 4, ProcessorSet::of(2, {1}));
  EXPECT_DOUBLE_EQ(s.busy_area(), 8.0);
  EXPECT_DOUBLE_EQ(s.utilization(), 1.0);
}

TEST(Schedule, UtilizationOfEmptyScheduleIsZero) {
  EXPECT_DOUBLE_EQ(Schedule(1, 2).utilization(), 0.0);
}

TEST(ScheduleValidate, AcceptsCorrectSchedule) {
  const TaskGraph g = test::chain(2, 5.0, 2, 0.0);
  const Cluster c(2);
  const CommModel m(c);
  Schedule s(2, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0}));
  s.place(1, 5, 5, 10, ProcessorSet::of(2, {0}));
  EXPECT_EQ(s.validate(g, m), "");
}

TEST(ScheduleValidate, DetectsMissingPlacement) {
  const TaskGraph g = test::chain(2, 5.0, 2, 0.0);
  const CommModel m{Cluster(2)};
  Schedule s(2, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0}));
  EXPECT_NE(s.validate(g, m).find("not placed"), std::string::npos);
}

TEST(ScheduleValidate, DetectsWindowShorterThanExecTime) {
  const TaskGraph g = test::chain(1, 5.0, 2, 0.0);
  const CommModel m{Cluster(2)};
  Schedule s(1, 2);
  s.place(0, 0, 0, 3, ProcessorSet::of(2, {0}));  // needs 5
  EXPECT_NE(s.validate(g, m).find("shorter"), std::string::npos);
}

TEST(ScheduleValidate, DetectsDoubleBooking) {
  TaskGraph g;
  g.add_task("a", serial(5.0, 2));
  g.add_task("b", serial(5.0, 2));
  const CommModel m{Cluster(2)};
  Schedule s(2, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0}));
  s.place(1, 3, 3, 8, ProcessorSet::of(2, {0, 1}));  // overlaps proc 0
  EXPECT_NE(s.validate(g, m).find("double-booked"), std::string::npos);
}

TEST(ScheduleValidate, DetectsPrecedenceViolation) {
  const TaskGraph g = test::chain(2, 5.0, 2, 0.0);
  const CommModel m{Cluster(2)};
  Schedule s(2, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0}));
  s.place(1, 3, 3, 8, ProcessorSet::of(2, {1}));  // starts before parent ends
  EXPECT_NE(s.validate(g, m).find("earlier than parent"), std::string::npos);
}

TEST(ScheduleValidate, DetectsMissingRedistributionTime) {
  // 1000 bytes over 1 stream of 100 B/s = 10 s of transfer between
  // disjoint processor sets; starting immediately is invalid.
  const TaskGraph g = test::chain(2, 5.0, 2, 1000.0);
  const CommModel m{Cluster(2, 100.0)};
  Schedule s(2, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0}));
  s.place(1, 5, 5, 10, ProcessorSet::of(2, {1}));
  EXPECT_NE(s.validate(g, m).find("transfer"), std::string::npos);
  // With the data kept local it is fine.
  Schedule ok(2, 2);
  ok.place(0, 0, 0, 5, ProcessorSet::of(2, {0}));
  ok.place(1, 5, 5, 10, ProcessorSet::of(2, {0}));
  EXPECT_EQ(ok.validate(g, m), "");
}

TEST(ScheduleValidate, ReportsTaskCountMismatch) {
  const TaskGraph g = test::chain(2, 5.0, 2, 0.0);
  const CommModel m{Cluster(2)};
  Schedule s(1, 2);
  EXPECT_NE(s.validate(g, m), "");
}

}  // namespace
}  // namespace locmps
