#include "schedule/schedule_dag.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace locmps {
namespace {

using test::serial;

TEST(ScheduleDag, CriticalPathOfChainSumsAllWeights) {
  const TaskGraph g = test::chain(3);
  ScheduleDag dag(g);
  dag.set_vertex_time(0, 2.0);
  dag.set_vertex_time(1, 3.0);
  dag.set_vertex_time(2, 4.0);
  dag.set_edge_time(0, 1.0);
  dag.set_edge_time(1, 0.5);
  const CriticalPathInfo cp = dag.critical_path();
  EXPECT_DOUBLE_EQ(cp.length, 10.5);
  EXPECT_DOUBLE_EQ(cp.comp_cost, 9.0);
  EXPECT_DOUBLE_EQ(cp.comm_cost, 1.5);
  EXPECT_EQ(cp.tasks, (std::vector<TaskId>{0, 1, 2}));
  EXPECT_EQ(cp.edges.size(), 2u);
  EXPECT_NE(cp.edges[0], kNoEdge);
}

TEST(ScheduleDag, CriticalPathPicksHeavierBranch) {
  const TaskGraph g = test::diamond();  // 0->1, 0->2, 1->3, 2->3
  ScheduleDag dag(g);
  for (TaskId t : g.task_ids()) dag.set_vertex_time(t, 1.0);
  dag.set_vertex_time(2, 10.0);
  const CriticalPathInfo cp = dag.critical_path();
  EXPECT_EQ(cp.tasks, (std::vector<TaskId>{0, 2, 3}));
  EXPECT_DOUBLE_EQ(cp.length, 12.0);
}

TEST(ScheduleDag, HeavyEdgeDrawsCriticalPath) {
  const TaskGraph g = test::diamond();
  ScheduleDag dag(g);
  for (TaskId t : g.task_ids()) dag.set_vertex_time(t, 1.0);
  // Edge 0 is 0->1; make it dominate.
  dag.set_edge_time(0, 50.0);
  const CriticalPathInfo cp = dag.critical_path();
  EXPECT_EQ(cp.tasks, (std::vector<TaskId>{0, 1, 3}));
  EXPECT_DOUBLE_EQ(cp.comm_cost, 50.0);
}

TEST(ScheduleDag, PseudoEdgeExtendsCriticalPath) {
  // Two independent tasks; a pseudo-edge serializes them.
  TaskGraph g;
  g.add_task("a", serial(5.0, 2));
  g.add_task("b", serial(7.0, 2));
  ScheduleDag dag(g);
  dag.set_vertex_time(0, 5.0);
  dag.set_vertex_time(1, 7.0);
  EXPECT_DOUBLE_EQ(dag.critical_path().length, 7.0);
  dag.add_pseudo_edge(0, 1);
  const CriticalPathInfo cp = dag.critical_path();
  EXPECT_DOUBLE_EQ(cp.length, 12.0);
  EXPECT_DOUBLE_EQ(cp.comm_cost, 0.0);  // pseudo edges are free
  ASSERT_EQ(cp.edges.size(), 1u);
  EXPECT_EQ(cp.edges[0], kNoEdge);
}

TEST(ScheduleDag, PaperFig1ScheduleDag) {
  // Fig 1: G with T1 -> {T2, T3} -> T4 on 4 processors; allocations
  // (4,3,2,4) serialize T2 and T3, giving CP length 10+7+5+8 = 30.
  TaskGraph g;
  const TaskId t1 = g.add_task("T1", serial(10.0, 4));
  const TaskId t2 = g.add_task("T2", serial(7.0, 4));
  const TaskId t3 = g.add_task("T3", serial(5.0, 4));
  const TaskId t4 = g.add_task("T4", serial(8.0, 4));
  g.add_edge(t1, t2, 0.0);
  g.add_edge(t1, t3, 0.0);
  g.add_edge(t2, t4, 0.0);
  g.add_edge(t3, t4, 0.0);
  ScheduleDag dag(g);
  dag.set_vertex_time(t1, 10.0);
  dag.set_vertex_time(t2, 7.0);
  dag.set_vertex_time(t3, 5.0);
  dag.set_vertex_time(t4, 8.0);
  // Without the induced dependence the CP is T1,T2,T4 = 25.
  EXPECT_DOUBLE_EQ(dag.critical_path().length, 25.0);
  dag.add_pseudo_edge(t2, t3);  // resource-induced serialization
  const CriticalPathInfo cp = dag.critical_path();
  EXPECT_DOUBLE_EQ(cp.length, 30.0);
  EXPECT_EQ(cp.tasks, (std::vector<TaskId>{t1, t2, t3, t4}));
}

TEST(ScheduleDag, RejectsBadPseudoEdges) {
  const TaskGraph g = test::chain(2);
  ScheduleDag dag(g);
  EXPECT_THROW(dag.add_pseudo_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(dag.add_pseudo_edge(0, 9), std::invalid_argument);
}

TEST(ScheduleDag, DetectsPseudoCycle) {
  const TaskGraph g = test::chain(2);
  ScheduleDag dag(g);
  dag.add_pseudo_edge(1, 0);  // against the chain direction
  EXPECT_THROW(dag.critical_path(), std::logic_error);
}

TEST(ScheduleDag, TracksPseudoEdgeList) {
  const TaskGraph g = test::diamond();
  ScheduleDag dag(g);
  EXPECT_EQ(dag.num_pseudo_edges(), 0u);
  dag.add_pseudo_edge(1, 2);
  ASSERT_EQ(dag.num_pseudo_edges(), 1u);
  EXPECT_EQ(dag.pseudo_edges()[0], (std::pair<TaskId, TaskId>{1, 2}));
}

}  // namespace
}  // namespace locmps
