/// Tests for the scheduler self-profiling subsystem (obs/profile.hpp,
/// obs/flame.hpp, obs/log.hpp): span nesting and aggregation, the
/// merge-under-current-span reduction, allocation attribution, the
/// collapsed-stack flamegraph golden format, the Perfetto profile track,
/// the report's profile panel, the bounded EventBuffer, the leveled
/// logger — and the headline determinism property: LoC-MPS profiles for
/// threads in {1, 2, 8} have bit-identical span trees (names and counts)
/// that reconcile with the sequential run (docs/parallelism.md).

#include "obs/profile.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "obs/events.hpp"
#include "obs/flame.hpp"
#include "obs/log.hpp"
#include "obs/report.hpp"
#include "schedule/trace_export.hpp"
#include "schedulers/loc_mps.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace locmps {
namespace {

// ---------------------------------------------------------------------------
// Profiler core

TEST(Profiler, NestedSpansBuildTheCallTree) {
  obs::Profiler p;
  {
    auto outer = p.span("outer");
    { auto inner = p.span("inner"); }
    { auto inner = p.span("inner"); }
  }
  { auto outer = p.span("outer"); }
  const obs::ProfileSnapshot snap = p.snapshot();
  ASSERT_EQ(snap.root.children.size(), 1u);
  const obs::ProfileNode* outer = snap.find("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 2u);
  ASSERT_EQ(outer->children.size(), 1u);
  const obs::ProfileNode* inner = snap.find("outer;inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2u);
  // Totals are inclusive: the parent covers its children.
  EXPECT_GE(outer->wall_s, inner->wall_s);
  EXPECT_GE(outer->self_wall_s(), 0.0);
  // The two occurrences of "outer" land as two intervals + two of
  // "inner" (depth 1).
  EXPECT_EQ(snap.intervals.size(), 4u);
  EXPECT_EQ(snap.find("does.not.exist"), nullptr);
}

TEST(Profiler, NullSpanIsInert) {
  // The LOCMPS_SPAN macro expands to this when observability is off.
  obs::ProfileSpan span(nullptr, "ignored");
  span.stop();  // idempotent, no crash
  const obs::ObsContext* null_ctx = nullptr;
  EXPECT_EQ(obs::profiler_of(null_ctx), nullptr);
}

TEST(Profiler, SpanMacroRecordsThroughContext) {
  obs::Profiler p;
  obs::ObsContext ctx{nullptr, nullptr, &p};
  const obs::ObsContext* obs = &ctx;
  { LOCMPS_SPAN(obs, "macro.span"); }
  EXPECT_NE(p.snapshot().find("macro.span"), nullptr);
}

TEST(Profiler, MergeGraftsUnderTheOpenSpan) {
  obs::Profiler donor(/*record_intervals=*/false);
  { auto child = donor.span("probe.work"); }
  obs::Profiler session;
  {
    auto parent = session.span("parent");
    session.merge_from(donor.snapshot());
    session.merge_from(donor.snapshot());
  }
  const obs::ProfileSnapshot snap = session.snapshot();
  const obs::ProfileNode* grafted = snap.find("parent;probe.work");
  ASSERT_NE(grafted, nullptr);
  EXPECT_EQ(grafted->count, 2u);
  // Donor intervals are epoch-relative and must not transfer.
  EXPECT_EQ(snap.intervals.size(), 1u);  // just "parent"
}

TEST(Profiler, ResetClearsEverything) {
  obs::Profiler p;
  { auto s = p.span("x"); }
  p.reset();
  EXPECT_TRUE(p.snapshot().empty());
  EXPECT_TRUE(p.snapshot().intervals.empty());
}

TEST(Profiler, IntervalLogIsBoundedAggregatesAreNot) {
  obs::Profiler p;
  const std::size_t n = obs::Profiler::kMaxIntervals + 10;
  for (std::size_t i = 0; i < n; ++i) {
    auto s = p.span("tick");
  }
  const obs::ProfileSnapshot snap = p.snapshot();
  EXPECT_EQ(snap.intervals.size(), obs::Profiler::kMaxIntervals);
  EXPECT_EQ(p.intervals_dropped(), 10u);
  ASSERT_NE(snap.find("tick"), nullptr);
  EXPECT_EQ(snap.find("tick")->count, n);
}

TEST(Profiler, AllocationAttributionIsExactAndPausable) {
  if (!obs::alloc_counting_enabled())
    GTEST_SKIP() << "LOCMPS_PROFILE alloc hook not compiled in";
  obs::Profiler p;
  // Direct calls to ::operator new — a plain new-expression here could
  // be elided entirely by the optimizer (C++14 allocation elision).
  {
    auto s = p.span("alloc.heavy");
    ::operator delete(::operator new(std::size_t{1} << 20));
  }
  {
    auto s = p.span("alloc.none");
    obs::pause_alloc_counting();
    ::operator delete(::operator new(std::size_t{1} << 20));
    obs::resume_alloc_counting();
  }
  const obs::ProfileSnapshot snap = p.snapshot();
  EXPECT_GE(snap.find("alloc.heavy")->alloc_bytes, std::uint64_t{1} << 20);
  EXPECT_GE(snap.find("alloc.heavy")->allocs, 1u);
  EXPECT_EQ(snap.find("alloc.none")->alloc_bytes, 0u);
  EXPECT_EQ(snap.find("alloc.none")->allocs, 0u);
}

// ---------------------------------------------------------------------------
// Flamegraph / tree rendering

/// Hand-built two-level snapshot with exact weights (times chosen so
/// self = total - child is a round microsecond count).
obs::ProfileSnapshot golden_snapshot() {
  obs::ProfileSnapshot snap;
  obs::ProfileNode plan;
  plan.name = "harness.plan";
  plan.count = 1;
  plan.wall_s = 0.000500;  // 500 us total, 200 us self
  plan.cpu_s = 0.000400;
  plan.alloc_bytes = 3000;
  plan.allocs = 30;
  obs::ProfileNode run;
  run.name = "locmps.run";
  run.count = 2;
  run.wall_s = 0.000300;
  run.cpu_s = 0.000250;
  run.alloc_bytes = 1000;
  run.allocs = 10;
  plan.children.push_back(run);
  obs::ProfileNode analyze;
  analyze.name = "harness.analyze";
  analyze.count = 1;
  analyze.wall_s = 0.000100;
  analyze.cpu_s = 0.0;  // no CPU self-weight -> omitted from cpu flame
  analyze.alloc_bytes = 0;
  analyze.allocs = 0;
  snap.root.children.push_back(analyze);
  snap.root.children.push_back(plan);
  return snap;
}

TEST(Flame, CollapsedStacksGoldenWallFormat) {
  std::ostringstream os;
  obs::write_collapsed_stacks(os, golden_snapshot());
  EXPECT_EQ(os.str(),
            "harness.analyze 100\n"
            "harness.plan 200\n"
            "harness.plan;locmps.run 300\n");
}

TEST(Flame, CollapsedStacksAllocWeightSkipsZeroRows) {
  std::ostringstream os;
  obs::write_collapsed_stacks(os, golden_snapshot(),
                              obs::FlameWeight::kAllocBytes);
  EXPECT_EQ(os.str(),
            "harness.plan 2000\n"
            "harness.plan;locmps.run 1000\n");
}

TEST(Flame, CollapsedStacksCpuWeight) {
  std::ostringstream os;
  obs::write_collapsed_stacks(os, golden_snapshot(),
                              obs::FlameWeight::kCpuMicros);
  EXPECT_EQ(os.str(),
            "harness.plan 150\n"
            "harness.plan;locmps.run 250\n");
}

TEST(Flame, ProfileTreeListsEveryNodeWithHeader) {
  std::ostringstream os;
  obs::write_profile_tree(os, golden_snapshot());
  const std::string out = os.str();
  EXPECT_NE(out.find("span"), std::string::npos);
  EXPECT_NE(out.find("harness.plan"), std::string::npos);
  EXPECT_NE(out.find("locmps.run"), std::string::npos);
  EXPECT_NE(out.find("harness.analyze"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Perfetto / report rendering

TEST(TraceExport, ProfileTrackEmitsNestedSlices) {
  const TaskGraph g = test::chain(2, 5.0, 2, 0.0);
  Schedule s(2, 2);
  s.place(0, 0.0, 0.0, 5.0, ProcessorSet::of(2, {0}));
  s.place(1, 5.0, 5.0, 10.0, ProcessorSet::of(2, {0}));

  obs::Profiler prof;
  {
    auto outer = prof.span("harness.plan");
    auto inner = prof.span("locmps.run");
  }
  const obs::ProfileSnapshot snap = prof.snapshot();
  ASSERT_EQ(snap.intervals.size(), 2u);

  std::ostringstream os;
  write_chrome_trace(os, g, s, nullptr, &snap);
  const test::Json doc = test::parse_json(os.str());
  const test::Json* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);

  bool named_thread = false;
  std::size_t slices = 0;
  for (const test::Json& e : events->items) {
    const test::Json* name = e.get("name");
    if (name == nullptr) continue;
    if (name->str == "thread_name") {
      for (const auto& [k, v] : e.get("args")->members)
        if (k == "name" && v.str == "profile.spans") named_thread = true;
    }
    if (name->str == "harness.plan" || name->str == "locmps.run") {
      ++slices;
      EXPECT_EQ(e.get("ph")->str, "X");
      EXPECT_GE(e.get("dur")->number, 0.0);
      ASSERT_NE(e.get("args"), nullptr);
      EXPECT_NE(e.get("args")->get("depth"), nullptr);
    }
  }
  EXPECT_TRUE(named_thread);
  EXPECT_EQ(slices, 2u);
}

TEST(Report, RendersProfilePanelAndDroppedEventsFooter) {
  TaskGraph g;
  const TaskId ta = g.add_task("a", test::serial(10.0, 4));
  const TaskId tb = g.add_task("b", test::serial(10.0, 4));
  g.add_edge(ta, tb, 5e6);
  Schedule s(2, 4);
  s.place(ta, 0.0, 0.0, 10.0, ProcessorSet::of(4, {0}));
  s.place(tb, 15.0, 15.0, 25.0, ProcessorSet::of(4, {1}));
  const Cluster cluster(4, 1e6);
  obs::ScheduleAnalysis a = obs::analyze_schedule(g, s, CommModel(cluster));
  a.events_dropped = 7.0;

  const obs::ProfileSnapshot snap = golden_snapshot();
  obs::ReportOptions opt;
  opt.title = "profile panel fixture";
  opt.profile = &snap;
  const std::string html = obs::html_report(g, s, a, opt);
  const test::Xml root = test::parse_xhtml_report(html);
  EXPECT_NE(root.find_by_id("profile-table"), nullptr);
  EXPECT_NE(root.find_by_id("profile-total-wall"), nullptr);
  EXPECT_NE(root.find_by_id("profile-total-cpu"), nullptr);
  EXPECT_NE(root.find_by_id("profile-total-alloc"), nullptr);
  EXPECT_NE(html.find("Planner self-profile"), std::string::npos);
  EXPECT_NE(html.find("harness.plan"), std::string::npos);
  // Dropped decision events must be visible in both renderings.
  EXPECT_NE(html.find("dropped"), std::string::npos);
  EXPECT_NE(obs::text_report(a).find("dropped"), std::string::npos);

  // Without a profile (or with an empty one) the panel is absent.
  obs::ReportOptions bare;
  const std::string plain = obs::html_report(g, s, a, bare);
  EXPECT_EQ(test::parse_xhtml_report(plain).find_by_id("profile-table"),
            nullptr);
}

// ---------------------------------------------------------------------------
// EventBuffer overflow policy

TEST(EventBuffer, BoundsRetentionAndCountsDrops) {
  obs::EventBuffer buf;
  const std::size_t n = obs::EventBuffer::kMaxEvents + 5;
  for (std::size_t i = 0; i < n; ++i) buf.emit(obs::Event("tick"));
  EXPECT_EQ(buf.events().size(), obs::EventBuffer::kMaxEvents);
  EXPECT_EQ(buf.dropped(), 5u);
  buf.clear();
  EXPECT_TRUE(buf.events().empty());
  EXPECT_EQ(buf.dropped(), 0u);
}

// ---------------------------------------------------------------------------
// Leveled logger

TEST(Log, LevelFiltersAndPrefixesLines) {
  std::ostringstream sink;
  obs::set_log_stream(&sink);
  obs::set_log_level(obs::LogLevel::kWarn);
  obs::log(obs::LogLevel::kInfo, "test") << "suppressed";
  obs::log(obs::LogLevel::kError, "test") << "kept " << 42;
  obs::set_log_level(obs::LogLevel::kInfo);
  obs::set_log_stream(nullptr);

  const std::string out = sink.str();
  EXPECT_EQ(out.find("suppressed"), std::string::npos);
  EXPECT_NE(out.find("E test: kept 42"), std::string::npos);
}

TEST(Log, ParseLevelAcceptsNamesAndLetters) {
  obs::LogLevel l = obs::LogLevel::kInfo;
  EXPECT_TRUE(obs::parse_log_level("debug", l));
  EXPECT_EQ(l, obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::parse_log_level("w", l));
  EXPECT_EQ(l, obs::LogLevel::kWarn);
  EXPECT_FALSE(obs::parse_log_level("loud", l));
}

// ---------------------------------------------------------------------------
// Determinism across speculative-probe thread counts

/// One instrumented LoC-MPS run with an attached profiler.
obs::ProfileSnapshot profile_locmps(const TaskGraph& g,
                                    const Cluster& cluster,
                                    std::size_t threads, bool with_sink) {
  LocMPSOptions opt;
  opt.threads = threads;
  LocMPSScheduler sched(opt);
  obs::MetricsRegistry reg;
  obs::EventBuffer buf;
  obs::Profiler prof;
  obs::ObsContext ctx{&reg, with_sink ? &buf : nullptr, &prof};
  sched.attach_observability(&ctx);
  sched.schedule(g, cluster);
  return prof.snapshot();
}

/// Recursively asserts identical structure and counts (names, child
/// sets, per-node counts) — the bit-identical part of the contract.
void expect_same_shape(const obs::ProfileNode& a, const obs::ProfileNode& b,
                       const std::string& label) {
  EXPECT_EQ(a.name, b.name) << label;
  EXPECT_EQ(a.count, b.count) << label << " @" << a.name;
  ASSERT_EQ(a.children.size(), b.children.size()) << label << " @" << a.name;
  for (std::size_t i = 0; i < a.children.size(); ++i)
    expect_same_shape(a.children[i], b.children[i], label);
}

/// Recursively asserts exact allocation equality (bytes and counts).
void expect_same_allocs(const obs::ProfileNode& a, const obs::ProfileNode& b,
                        const std::string& label) {
  EXPECT_EQ(a.alloc_bytes, b.alloc_bytes) << label << " @" << a.name;
  EXPECT_EQ(a.allocs, b.allocs) << label << " @" << a.name;
  ASSERT_EQ(a.children.size(), b.children.size()) << label << " @" << a.name;
  for (std::size_t i = 0; i < a.children.size(); ++i)
    expect_same_allocs(a.children[i], b.children[i], label);
}

/// Relative difference helper for the loose cross-thread alloc check.
double rel_diff(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) / scale;
}

TEST(SelfProfileDeterminism, SpanTreesAreCountIdenticalAcrossThreads) {
  SyntheticParams p;
  p.max_procs = 16;
  Rng rng(20060901);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster cluster(16, p.bandwidth_Bps);

  const obs::ProfileSnapshot ref = profile_locmps(g, cluster, 1, true);
  EXPECT_FALSE(ref.empty());
  EXPECT_NE(ref.find("locmps.run"), nullptr);
  EXPECT_NE(ref.find("locmps.run;locmps.walk;locbs.pass"), nullptr);
  for (const std::size_t threads : {2u, 8u}) {
    const obs::ProfileSnapshot par = profile_locmps(g, cluster, threads, true);
    expect_same_shape(ref.root, par.root,
                      "threads=" + std::to_string(threads));
  }
}

TEST(SelfProfileDeterminism, AllocBytesReproducibleAtFixedThreadCount) {
  if (!obs::alloc_counting_enabled())
    GTEST_SKIP() << "LOCMPS_PROFILE alloc hook not compiled in";
  SyntheticParams p;
  p.max_procs = 16;
  Rng rng(20060901);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster cluster(16, p.bandwidth_Bps);

  // At a fixed thread count the planner's allocation sequence is
  // deterministic, so two runs agree byte-for-byte on every span.
  for (const std::size_t threads : {1u, 8u}) {
    const obs::ProfileSnapshot a = profile_locmps(g, cluster, threads, false);
    const obs::ProfileSnapshot b = profile_locmps(g, cluster, threads, false);
    expect_same_allocs(a.root, b.root,
                       "threads=" + std::to_string(threads));
  }
}

TEST(SelfProfileDeterminism, AllocBytesReconcileAcrossThreadCounts) {
  if (!obs::alloc_counting_enabled())
    GTEST_SKIP() << "LOCMPS_PROFILE alloc hook not compiled in";
  SyntheticParams p;
  p.max_procs = 16;
  Rng rng(20060901);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster cluster(16, p.bandwidth_Bps);

  // Across thread counts the byte totals are close but not exact:
  // probes start with cold container capacities, so the same logical
  // work triggers a few more capacity-growth reallocations than the
  // long-lived sequential pass (span counts stay bit-identical — the
  // shape test above). Bound the drift so a real attribution bug
  // (missing merge, double count) still fails loudly.
  const obs::ProfileSnapshot ref = profile_locmps(g, cluster, 1, false);
  const obs::ProfileNode* ref_pass =
      ref.find("locmps.run;locmps.walk;locbs.pass");
  ASSERT_NE(ref_pass, nullptr);
  for (const std::size_t threads : {2u, 8u}) {
    const obs::ProfileSnapshot par =
        profile_locmps(g, cluster, threads, false);
    const obs::ProfileNode* par_pass =
        par.find("locmps.run;locmps.walk;locbs.pass");
    ASSERT_NE(par_pass, nullptr);
    EXPECT_LT(rel_diff(static_cast<double>(ref_pass->alloc_bytes),
                       static_cast<double>(par_pass->alloc_bytes)),
              0.25)
        << "threads=" << threads << ": " << ref_pass->alloc_bytes << " vs "
        << par_pass->alloc_bytes;
    EXPECT_LT(rel_diff(static_cast<double>(ref_pass->allocs),
                       static_cast<double>(par_pass->allocs)),
              0.25)
        << "threads=" << threads << ": " << ref_pass->allocs << " vs "
        << par_pass->allocs;
  }
}

TEST(SelfProfileDeterminism, WallAndCpuTimesAreSaneAcrossThreads) {
  SyntheticParams p;
  p.max_procs = 16;
  Rng rng(20060901);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster cluster(16, p.bandwidth_Bps);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const obs::ProfileSnapshot snap =
        profile_locmps(g, cluster, threads, true);
    const obs::ProfileNode* run = snap.find("locmps.run");
    ASSERT_NE(run, nullptr);
    EXPECT_GT(run->wall_s, 0.0) << "threads=" << threads;
    // CPU time can exceed wall under parallel probes (that is the
    // point) but must stay nonnegative and finite.
    EXPECT_GE(run->cpu_s, 0.0) << "threads=" << threads;
    EXPECT_TRUE(std::isfinite(run->cpu_s)) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Harness integration: the reconcile guarantee

TEST(SelfProfileHarness, HarnessPlanReconcilesWithSchedulingSeconds) {
  SyntheticParams p;
  p.max_procs = 16;
  Rng rng(20060901);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster cluster(16, p.bandwidth_Bps);

  obs::Profiler prof;
  const SchemeRun run =
      evaluate_scheme("loc-mps", g, cluster, {}, nullptr, {}, &prof);
  const obs::ProfileSnapshot snap = prof.snapshot();
  const obs::ProfileNode* plan = snap.find("harness.plan");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->count, 1u);
  // The span brackets exactly the Stopwatch region behind
  // scheduling_seconds; allow 2% plus a tiny absolute slack for the
  // clock reads themselves.
  EXPECT_NEAR(plan->wall_s, run.scheduling_seconds,
              0.02 * run.scheduling_seconds + 1e-4);
  EXPECT_NE(snap.find("harness.simulate;sim.execute"), nullptr);
  EXPECT_NE(snap.find("harness.analyze"), nullptr);
  EXPECT_NE(snap.find("harness.plan;locmps.run"), nullptr);
}

}  // namespace
}  // namespace locmps
