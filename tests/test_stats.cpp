#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace locmps {
namespace {

TEST(Stats, EmptySummaryIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Stats, SingleElement) {
  const std::vector<double> xs{4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.geomean, 4.0);
}

TEST(Stats, KnownSample) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.13809, 1e-4);  // sample stddev (n-1)
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Stats, GeomeanOfPowers) {
  const std::vector<double> xs{1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
}

TEST(Stats, GeomeanZeroWhenNonPositive) {
  const std::vector<double> xs{1.0, 0.0, 2.0};
  EXPECT_EQ(geomean(xs), 0.0);
}

TEST(Stats, MeanMatchesSummarize) {
  const std::vector<double> xs{1.5, 2.5, 3.0};
  EXPECT_DOUBLE_EQ(mean(xs), (1.5 + 2.5 + 3.0) / 3.0);
}

TEST(Stats, QuantileEndpoints) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Stats, QuantileClampsOutOfRange) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 2.0);
}

}  // namespace
}  // namespace locmps
