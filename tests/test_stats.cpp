#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace locmps {
namespace {

TEST(Stats, EmptySummaryIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Stats, SingleElement) {
  const std::vector<double> xs{4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.geomean, 4.0);
}

TEST(Stats, KnownSample) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.13809, 1e-4);  // sample stddev (n-1)
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Stats, GeomeanOfPowers) {
  const std::vector<double> xs{1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
}

TEST(Stats, GeomeanZeroWhenNonPositive) {
  const std::vector<double> xs{1.0, 0.0, 2.0};
  EXPECT_EQ(geomean(xs), 0.0);
}

TEST(Stats, MeanMatchesSummarize) {
  const std::vector<double> xs{1.5, 2.5, 3.0};
  EXPECT_DOUBLE_EQ(mean(xs), (1.5 + 2.5 + 3.0) / 3.0);
}

TEST(Stats, QuantileEndpoints) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Stats, QuantileClampsOutOfRange) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 2.0);
}

TEST(Stats, MedianOddAndEven) {
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, MedianCiEmptyAndSingleton) {
  const MedianCI none = median_ci({});
  EXPECT_EQ(none.median, 0.0);
  EXPECT_EQ(none.coverage, 0.0);
  const std::vector<double> one{5.0};
  const MedianCI ci = median_ci(one);
  EXPECT_DOUBLE_EQ(ci.median, 5.0);
  EXPECT_DOUBLE_EQ(ci.lo, 5.0);
  EXPECT_DOUBLE_EQ(ci.hi, 5.0);
}

TEST(Stats, MedianCiSmallSampleFallsBackToMinMax) {
  // n=5: even the widest interval [x_(1), x_(5)] covers only
  // 1 - 2 * (1/2)^5 = 93.75% < 95%.
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const MedianCI ci = median_ci(xs, 0.95);
  EXPECT_DOUBLE_EQ(ci.lo, 1.0);
  EXPECT_DOUBLE_EQ(ci.hi, 5.0);
  EXPECT_NEAR(ci.coverage, 0.9375, 1e-12);
}

TEST(Stats, MedianCiKnownOrderStatistics) {
  // n=10 at 95%: the smallest symmetric k is 2, i.e. [x_(2), x_(9)],
  // with exact coverage 1 - 2*P(B<=1) = 1 - 2*11/1024 = 1002/1024.
  std::vector<double> xs;
  for (int i = 10; i >= 1; --i) xs.push_back(static_cast<double>(i));
  const MedianCI ci = median_ci(xs, 0.95);
  EXPECT_DOUBLE_EQ(ci.median, 5.5);
  EXPECT_DOUBLE_EQ(ci.lo, 2.0);
  EXPECT_DOUBLE_EQ(ci.hi, 9.0);
  EXPECT_NEAR(ci.coverage, 1002.0 / 1024.0, 1e-12);
  EXPECT_GE(ci.coverage, 0.95);
  EXPECT_LE(ci.lo, ci.median);
  EXPECT_GE(ci.hi, ci.median);
}

}  // namespace
}  // namespace locmps
