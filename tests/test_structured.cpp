#include "workloads/structured.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "graph/algorithms.hpp"
#include "workloads/tce.hpp"

namespace locmps {
namespace {

StructuredParams small_params() {
  StructuredParams p;
  p.max_procs = 8;
  p.ccr = 0.2;
  return p;
}

TEST(Structured, ForkJoinShape) {
  Rng rng(1);
  const TaskGraph g = make_fork_join(3, 4, small_params(), rng);
  EXPECT_EQ(g.validate(), "");
  // 1 start + 3 * (4 forked + 1 join).
  EXPECT_EQ(g.num_tasks(), 1u + 3u * 5u);
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
  // Each join has in-degree = width.
  for (TaskId t : g.task_ids())
    if (g.task(t).name.rfind("join", 0) == 0) EXPECT_EQ(g.in_degree(t), 4u);
}

TEST(Structured, PipelineIsAPath) {
  Rng rng(2);
  const TaskGraph g = make_pipeline(6, small_params(), rng);
  EXPECT_EQ(g.num_tasks(), 6u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
  for (TaskId t : g.task_ids()) EXPECT_LE(g.out_degree(t), 1u);
}

TEST(Structured, LayeredIsDenselyConnected) {
  Rng rng(3);
  const TaskGraph g = make_layered(3, 4, small_params(), rng);
  EXPECT_EQ(g.num_tasks(), 12u);
  EXPECT_EQ(g.num_edges(), 2u * 4u * 4u);  // full bipartite between layers
  EXPECT_EQ(g.validate(), "");
  EXPECT_EQ(g.sources().size(), 4u);
}

TEST(Structured, SeriesParallelIsValidAndGrows) {
  Rng rng(4);
  const TaskGraph g = make_series_parallel(30, small_params(), rng);
  EXPECT_EQ(g.validate(), "");
  EXPECT_EQ(g.num_tasks(), 32u);  // 2 + one new vertex per operation
  EXPECT_GE(g.num_edges(), 31u);
  EXPECT_EQ(g.sinks().size(), 1u);
  EXPECT_EQ(g.sources().size(), 1u);
}

TEST(Structured, CcrZeroMeansNoData) {
  StructuredParams p = small_params();
  p.ccr = 0.0;
  Rng rng(5);
  const TaskGraph g = make_layered(2, 3, p, rng);
  for (std::size_t e = 0; e < g.num_edges(); ++e)
    EXPECT_DOUBLE_EQ(g.edge(static_cast<EdgeId>(e)).volume_bytes, 0.0);
}

TEST(Structured, AllFamiliesAreSchedulable) {
  Rng rng(6);
  const StructuredParams p = small_params();
  const Cluster c(8);
  const CommModel comm(c);
  std::vector<TaskGraph> graphs;
  graphs.push_back(make_fork_join(2, 3, p, rng));
  graphs.push_back(make_pipeline(5, p, rng));
  graphs.push_back(make_layered(3, 3, p, rng));
  graphs.push_back(make_series_parallel(20, p, rng));
  for (const auto& g : graphs) {
    const SchemeRun run = evaluate_scheme("loc-mps", g, c);
    EXPECT_EQ(run.schedule.validate(g, comm), "");
  }
}

// ------------------------------------------------------------- CCSD T2 --
TEST(CCSDT2, GraphIsValid) {
  const TaskGraph g = make_ccsd_t2();
  EXPECT_EQ(g.validate(), "");
  EXPECT_EQ(g.sinks().size(), 1u);
  EXPECT_EQ(g.task(g.sinks()[0]).name, "t2residual");
  EXPECT_GT(g.num_tasks(), 20u);
}

TEST(CCSDT2, MuchMoreWorkThanT1) {
  const TCEParams p;
  EXPECT_GT(make_ccsd_t2(p).total_serial_work(),
            5.0 * make_ccsd_t1(p).total_serial_work());
}

TEST(CCSDT2, LadderTermDominates) {
  const TaskGraph g = make_ccsd_t2();
  double ladder = 0.0, max_other = 0.0;
  for (TaskId t : g.task_ids()) {
    const double w = g.task(t).profile.serial_time();
    if (g.task(t).name == "W_vvvv*t2")
      ladder = w;
    else
      max_other = std::max(max_other, w);
  }
  EXPECT_GT(ladder, 0.9 * max_other);  // among the largest contractions
}

TEST(CCSDT2, SchedulableByAllSchemes) {
  TCEParams p;
  p.occupied = 8;
  p.virt = 32;
  p.max_procs = 8;
  const TaskGraph g = make_ccsd_t2(p);
  const Cluster c(8, 250e6);
  for (const auto& s : {"loc-mps", "cpa", "twol", "data"}) {
    const SchemeRun run = evaluate_scheme(s, g, c);
    EXPECT_EQ(run.schedule.validate(g, CommModel(c)), "") << s;
  }
}

}  // namespace
}  // namespace locmps
