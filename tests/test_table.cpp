#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace locmps {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"P", "LoC-MPS"});
  t.add_row({"8", "1.000"});
  t.add_row({"128", "0.910"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("P"), std::string::npos);
  EXPECT_NE(out.find("128"), std::string::npos);
  EXPECT_NE(out.find("0.910"), std::string::npos);
  // header separator present
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RowsPaddedToHeaderWidth) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,,\n");
}

TEST(Table, NumericRowFormatting) {
  Table t({"P", "x", "y"});
  t.add_row_numeric("4", {1.23456, 0.5}, 2);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "P,x,y\n4,1.23,0.50\n");
}

TEST(Table, RowCount) {
  Table t({"h"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"x"});
  t.add_row({"y"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Table, MaybeWriteCsvRespectsEnv) {
  Table t({"a"});
  t.add_row({"1"});
  // Not set (or "0") -> no file written.
  unsetenv("LOCMPS_CSV");
  EXPECT_FALSE(t.maybe_write_csv("/tmp/locmps_test_should_not_exist.csv"));
  setenv("LOCMPS_CSV", "0", 1);
  EXPECT_FALSE(t.maybe_write_csv("/tmp/locmps_test_should_not_exist.csv"));
  setenv("LOCMPS_CSV", "1", 1);
  EXPECT_TRUE(t.maybe_write_csv("/tmp/locmps_test_env.csv"));
  unsetenv("LOCMPS_CSV");
}

}  // namespace
}  // namespace locmps
