#include "graph/task_graph.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace locmps {
namespace {

using test::serial;

TEST(TaskGraph, AddTasksAndEdges) {
  TaskGraph g;
  const TaskId a = g.add_task("a", serial(1.0, 4));
  const TaskId b = g.add_task("b", serial(2.0, 4));
  EXPECT_EQ(g.num_tasks(), 2u);
  const EdgeId e = g.add_edge(a, b, 100.0);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge(e).src, a);
  EXPECT_EQ(g.edge(e).dst, b);
  EXPECT_DOUBLE_EQ(g.edge(e).volume_bytes, 100.0);
  EXPECT_EQ(g.task(a).name, "a");
}

TEST(TaskGraph, AdjacencyIsConsistent) {
  const TaskGraph g = test::diamond();
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(3), 2u);
  EXPECT_EQ(g.out_edges(0).size(), 2u);
  for (EdgeId e : g.out_edges(0)) EXPECT_EQ(g.edge(e).src, 0u);
  for (EdgeId e : g.in_edges(3)) EXPECT_EQ(g.edge(e).dst, 3u);
}

TEST(TaskGraph, EdgeValidation) {
  TaskGraph g;
  const TaskId a = g.add_task("a", serial(1.0, 4));
  EXPECT_THROW(g.add_edge(a, a, 0.0), std::invalid_argument);  // self loop
  EXPECT_THROW(g.add_edge(a, 7, 0.0), std::out_of_range);
  EXPECT_THROW(g.add_edge(7, a, 0.0), std::out_of_range);
  const TaskId b = g.add_task("b", serial(1.0, 4));
  EXPECT_THROW(g.add_edge(a, b, -1.0), std::invalid_argument);
}

TEST(TaskGraph, SourcesAndSinks) {
  const TaskGraph g = test::diamond();
  EXPECT_EQ(g.sources(), (std::vector<TaskId>{0}));
  EXPECT_EQ(g.sinks(), (std::vector<TaskId>{3}));
}

TEST(TaskGraph, MultiRootGraphHasAllSources) {
  TaskGraph g;
  g.add_task("a", serial(1.0, 4));
  g.add_task("b", serial(1.0, 4));
  EXPECT_EQ(g.sources().size(), 2u);
  EXPECT_EQ(g.sinks().size(), 2u);
}

TEST(TaskGraph, TotalSerialWork) {
  TaskGraph g;
  g.add_task("a", serial(3.0, 4));
  g.add_task("b", serial(4.5, 4));
  EXPECT_DOUBLE_EQ(g.total_serial_work(), 7.5);
}

TEST(TaskGraph, ValidateAcceptsDag) {
  EXPECT_EQ(test::diamond().validate(), "");
  EXPECT_EQ(test::chain(5).validate(), "");
}

TEST(TaskGraph, ValidateRejectsEmptyGraph) {
  EXPECT_NE(TaskGraph{}.validate(), "");
}

TEST(TaskGraph, ValidateDetectsCycle) {
  TaskGraph g;
  const TaskId a = g.add_task("a", serial(1.0, 4));
  const TaskId b = g.add_task("b", serial(1.0, 4));
  const TaskId c = g.add_task("c", serial(1.0, 4));
  g.add_edge(a, b, 0.0);
  g.add_edge(b, c, 0.0);
  g.add_edge(c, a, 0.0);
  EXPECT_NE(g.validate().find("cycle"), std::string::npos);
}

TEST(TaskGraph, TaskIdsRangeCoversAll) {
  const TaskGraph g = test::chain(4);
  std::size_t n = 0;
  for (TaskId t : g.task_ids()) {
    EXPECT_LT(t, 4u);
    ++n;
  }
  EXPECT_EQ(n, 4u);
}

}  // namespace
}  // namespace locmps
