#include "schedule/timeline.hpp"

#include <gtest/gtest.h>

namespace locmps {
namespace {

TEST(Timeline, FreshTimelineIsFullyFree) {
  const Timeline tl(4);
  EXPECT_EQ(tl.num_procs(), 4u);
  for (ProcId q = 0; q < 4; ++q) {
    EXPECT_TRUE(tl.is_free(q, 0.0, 100.0));
    EXPECT_EQ(tl.free_until(q, 0.0), kForever);
    EXPECT_DOUBLE_EQ(tl.latest_free_time(q), 0.0);
  }
}

TEST(Timeline, OccupyBlocksWindow) {
  Timeline tl(2);
  tl.occupy(ProcessorSet::of(2, {0}), 2.0, 5.0);
  EXPECT_FALSE(tl.is_free(0, 3.0, 4.0));
  EXPECT_FALSE(tl.is_free(0, 0.0, 3.0));  // overlaps start
  EXPECT_TRUE(tl.is_free(0, 0.0, 2.0));   // half-open: ends at busy start
  EXPECT_TRUE(tl.is_free(0, 5.0, 9.0));   // free again from end
  EXPECT_TRUE(tl.is_free(1, 0.0, 100.0));
}

TEST(Timeline, FreeUntilReportsNextBusyStart) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 4.0, 6.0);
  EXPECT_DOUBLE_EQ(tl.free_until(0, 0.0), 4.0);
  EXPECT_LT(tl.free_until(0, 5.0), 0.0);  // busy at t=5
  EXPECT_EQ(tl.free_until(0, 6.0), kForever);
}

TEST(Timeline, LatestFreeTimeTracksLastBooking) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 0.0, 3.0);
  tl.occupy(ProcessorSet::of(1, {0}), 7.0, 9.0);
  EXPECT_DOUBLE_EQ(tl.latest_free_time(0), 9.0);
}

TEST(Timeline, CandidateTimesAreFromPlusIntervalEnds) {
  Timeline tl(2);
  tl.occupy(ProcessorSet::of(2, {0}), 0.0, 3.0);
  tl.occupy(ProcessorSet::of(2, {1}), 1.0, 5.0);
  const auto times = tl.candidate_times(0.5);
  EXPECT_EQ(times, (std::vector<double>{0.5, 3.0, 5.0}));
  // Ends at or before `from` are excluded.
  const auto later = tl.candidate_times(4.0);
  EXPECT_EQ(later, (std::vector<double>{4.0, 5.0}));
}

TEST(Timeline, CandidateTimesDeduplicated) {
  Timeline tl(2);
  tl.occupy(ProcessorSet::of(2, {0, 1}), 0.0, 3.0);  // both end at 3
  const auto times = tl.candidate_times(0.0);
  EXPECT_EQ(times, (std::vector<double>{0.0, 3.0}));
}

TEST(Timeline, AvailableAtListsIdleProcsWithHorizon) {
  Timeline tl(3);
  tl.occupy(ProcessorSet::of(3, {0}), 0.0, 4.0);
  tl.occupy(ProcessorSet::of(3, {1}), 6.0, 8.0);
  const auto avail = tl.available_at(1.0);
  ASSERT_EQ(avail.size(), 2u);
  EXPECT_EQ(avail[0].proc, 1u);
  EXPECT_DOUBLE_EQ(avail[0].until, 6.0);
  EXPECT_EQ(avail[1].proc, 2u);
  EXPECT_EQ(avail[1].until, kForever);
}

TEST(Timeline, BackToBackBookingsAllowed) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 0.0, 3.0);
  tl.occupy(ProcessorSet::of(1, {0}), 3.0, 6.0);  // abutting is fine
  EXPECT_FALSE(tl.is_free(0, 2.0, 4.0));
  EXPECT_DOUBLE_EQ(tl.latest_free_time(0), 6.0);
}

TEST(Timeline, ZeroLengthBookingIsNoOp) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 3.0, 3.0);
  EXPECT_TRUE(tl.is_free(0, 0.0, 100.0));
}

TEST(TimelineHoles, EmptyTimelineIsOneHole) {
  const Timeline tl(1);
  const auto holes = tl.holes(0, 10.0);
  ASSERT_EQ(holes.size(), 1u);
  EXPECT_DOUBLE_EQ(holes[0].start, 0.0);
  EXPECT_DOUBLE_EQ(holes[0].end, 10.0);
}

TEST(TimelineHoles, NonPositiveHorizonHasNoHoles) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 2.0, 4.0);
  EXPECT_TRUE(tl.holes(0, 0.0).empty());
  EXPECT_TRUE(tl.holes(0, -1.0).empty());
}

TEST(TimelineHoles, FullyPackedTimelineHasNoHoles) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 0.0, 4.0);
  tl.occupy(ProcessorSet::of(1, {0}), 4.0, 10.0);
  EXPECT_TRUE(tl.holes(0, 10.0).empty());
}

TEST(TimelineHoles, AbuttingBookingsProduceNoZeroLengthHole) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 0.0, 3.0);
  tl.occupy(ProcessorSet::of(1, {0}), 3.0, 6.0);
  const auto holes = tl.holes(0, 8.0);
  ASSERT_EQ(holes.size(), 1u);
  EXPECT_DOUBLE_EQ(holes[0].start, 6.0);
  EXPECT_DOUBLE_EQ(holes[0].end, 8.0);
  for (const auto& h : holes) EXPECT_GT(h.end, h.start);
}

TEST(TimelineHoles, HoleAbutsHorizonExactly) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 0.0, 4.0);
  const auto holes = tl.holes(0, 10.0);
  ASSERT_EQ(holes.size(), 1u);
  EXPECT_DOUBLE_EQ(holes[0].start, 4.0);
  EXPECT_DOUBLE_EQ(holes[0].end, 10.0);
}

TEST(TimelineHoles, BusyWindowCrossingHorizonIsClamped) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 0.0, 4.0);
  tl.occupy(ProcessorSet::of(1, {0}), 8.0, 15.0);  // runs past the horizon
  const auto holes = tl.holes(0, 10.0);
  ASSERT_EQ(holes.size(), 1u);
  EXPECT_DOUBLE_EQ(holes[0].start, 4.0);
  EXPECT_DOUBLE_EQ(holes[0].end, 8.0);
}

TEST(TimelineHoles, BusyWindowStartingAtHorizonIsIgnored) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 10.0, 12.0);
  const auto holes = tl.holes(0, 10.0);
  ASSERT_EQ(holes.size(), 1u);
  EXPECT_DOUBLE_EQ(holes[0].start, 0.0);
  EXPECT_DOUBLE_EQ(holes[0].end, 10.0);
}

TEST(TimelineHoles, MiddleAndTailHolesEnumeratedInOrder) {
  Timeline tl(2);
  tl.occupy(ProcessorSet::of(2, {0}), 2.0, 4.0);
  tl.occupy(ProcessorSet::of(2, {0}), 6.0, 7.0);
  const auto holes = tl.holes(0, 9.0);
  ASSERT_EQ(holes.size(), 3u);
  EXPECT_DOUBLE_EQ(holes[0].start, 0.0);
  EXPECT_DOUBLE_EQ(holes[0].end, 2.0);
  EXPECT_DOUBLE_EQ(holes[1].start, 4.0);
  EXPECT_DOUBLE_EQ(holes[1].end, 6.0);
  EXPECT_DOUBLE_EQ(holes[2].start, 7.0);
  EXPECT_DOUBLE_EQ(holes[2].end, 9.0);
  // Busy + idle covers the horizon exactly.
  double idle = 0.0;
  for (const auto& h : holes) idle += h.end - h.start;
  EXPECT_DOUBLE_EQ(idle + 3.0, 9.0);
  // The untouched processor is one full-horizon hole.
  const auto other = tl.holes(1, 9.0);
  ASSERT_EQ(other.size(), 1u);
  EXPECT_DOUBLE_EQ(other[0].end - other[0].start, 9.0);
}

TEST(Timeline, BookingOutOfOrderKeepsSortedState) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 10.0, 12.0);
  tl.occupy(ProcessorSet::of(1, {0}), 2.0, 4.0);  // earlier hole booked later
  EXPECT_DOUBLE_EQ(tl.free_until(0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(tl.free_until(0, 4.0), 10.0);
  EXPECT_DOUBLE_EQ(tl.latest_free_time(0), 12.0);
}

}  // namespace
}  // namespace locmps
