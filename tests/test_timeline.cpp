#include "schedule/timeline.hpp"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace locmps {
namespace {

TEST(Timeline, FreshTimelineIsFullyFree) {
  const Timeline tl(4);
  EXPECT_EQ(tl.num_procs(), 4u);
  for (ProcId q = 0; q < 4; ++q) {
    EXPECT_TRUE(tl.is_free(q, 0.0, 100.0));
    EXPECT_EQ(tl.free_until(q, 0.0), kForever);
    EXPECT_DOUBLE_EQ(tl.latest_free_time(q), 0.0);
  }
}

TEST(Timeline, OccupyBlocksWindow) {
  Timeline tl(2);
  tl.occupy(ProcessorSet::of(2, {0}), 2.0, 5.0);
  EXPECT_FALSE(tl.is_free(0, 3.0, 4.0));
  EXPECT_FALSE(tl.is_free(0, 0.0, 3.0));  // overlaps start
  EXPECT_TRUE(tl.is_free(0, 0.0, 2.0));   // half-open: ends at busy start
  EXPECT_TRUE(tl.is_free(0, 5.0, 9.0));   // free again from end
  EXPECT_TRUE(tl.is_free(1, 0.0, 100.0));
}

TEST(Timeline, FreeUntilReportsNextBusyStart) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 4.0, 6.0);
  EXPECT_DOUBLE_EQ(tl.free_until(0, 0.0), 4.0);
  EXPECT_LT(tl.free_until(0, 5.0), 0.0);  // busy at t=5
  EXPECT_EQ(tl.free_until(0, 6.0), kForever);
}

TEST(Timeline, LatestFreeTimeTracksLastBooking) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 0.0, 3.0);
  tl.occupy(ProcessorSet::of(1, {0}), 7.0, 9.0);
  EXPECT_DOUBLE_EQ(tl.latest_free_time(0), 9.0);
}

TEST(Timeline, CandidateTimesAreFromPlusIntervalEnds) {
  Timeline tl(2);
  tl.occupy(ProcessorSet::of(2, {0}), 0.0, 3.0);
  tl.occupy(ProcessorSet::of(2, {1}), 1.0, 5.0);
  const auto times = tl.candidate_times(0.5);
  EXPECT_EQ(times, (std::vector<double>{0.5, 3.0, 5.0}));
  // Ends at or before `from` are excluded.
  const auto later = tl.candidate_times(4.0);
  EXPECT_EQ(later, (std::vector<double>{4.0, 5.0}));
}

TEST(Timeline, CandidateTimesDeduplicated) {
  Timeline tl(2);
  tl.occupy(ProcessorSet::of(2, {0, 1}), 0.0, 3.0);  // both end at 3
  const auto times = tl.candidate_times(0.0);
  EXPECT_EQ(times, (std::vector<double>{0.0, 3.0}));
}

TEST(Timeline, AvailableAtListsIdleProcsWithHorizon) {
  Timeline tl(3);
  tl.occupy(ProcessorSet::of(3, {0}), 0.0, 4.0);
  tl.occupy(ProcessorSet::of(3, {1}), 6.0, 8.0);
  const auto avail = tl.available_at(1.0);
  ASSERT_EQ(avail.size(), 2u);
  EXPECT_EQ(avail[0].proc, 1u);
  EXPECT_DOUBLE_EQ(avail[0].until, 6.0);
  EXPECT_EQ(avail[1].proc, 2u);
  EXPECT_EQ(avail[1].until, kForever);
}

TEST(Timeline, BackToBackBookingsAllowed) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 0.0, 3.0);
  tl.occupy(ProcessorSet::of(1, {0}), 3.0, 6.0);  // abutting is fine
  EXPECT_FALSE(tl.is_free(0, 2.0, 4.0));
  EXPECT_DOUBLE_EQ(tl.latest_free_time(0), 6.0);
}

TEST(Timeline, ZeroLengthBookingIsNoOp) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 3.0, 3.0);
  EXPECT_TRUE(tl.is_free(0, 0.0, 100.0));
}

TEST(TimelineHoles, EmptyTimelineIsOneHole) {
  const Timeline tl(1);
  const auto holes = tl.holes(0, 10.0);
  ASSERT_EQ(holes.size(), 1u);
  EXPECT_DOUBLE_EQ(holes[0].start, 0.0);
  EXPECT_DOUBLE_EQ(holes[0].end, 10.0);
}

TEST(TimelineHoles, NonPositiveHorizonHasNoHoles) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 2.0, 4.0);
  EXPECT_TRUE(tl.holes(0, 0.0).empty());
  EXPECT_TRUE(tl.holes(0, -1.0).empty());
}

TEST(TimelineHoles, FullyPackedTimelineHasNoHoles) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 0.0, 4.0);
  tl.occupy(ProcessorSet::of(1, {0}), 4.0, 10.0);
  EXPECT_TRUE(tl.holes(0, 10.0).empty());
}

TEST(TimelineHoles, AbuttingBookingsProduceNoZeroLengthHole) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 0.0, 3.0);
  tl.occupy(ProcessorSet::of(1, {0}), 3.0, 6.0);
  const auto holes = tl.holes(0, 8.0);
  ASSERT_EQ(holes.size(), 1u);
  EXPECT_DOUBLE_EQ(holes[0].start, 6.0);
  EXPECT_DOUBLE_EQ(holes[0].end, 8.0);
  for (const auto& h : holes) EXPECT_GT(h.end, h.start);
}

TEST(TimelineHoles, HoleAbutsHorizonExactly) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 0.0, 4.0);
  const auto holes = tl.holes(0, 10.0);
  ASSERT_EQ(holes.size(), 1u);
  EXPECT_DOUBLE_EQ(holes[0].start, 4.0);
  EXPECT_DOUBLE_EQ(holes[0].end, 10.0);
}

TEST(TimelineHoles, BusyWindowCrossingHorizonIsClamped) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 0.0, 4.0);
  tl.occupy(ProcessorSet::of(1, {0}), 8.0, 15.0);  // runs past the horizon
  const auto holes = tl.holes(0, 10.0);
  ASSERT_EQ(holes.size(), 1u);
  EXPECT_DOUBLE_EQ(holes[0].start, 4.0);
  EXPECT_DOUBLE_EQ(holes[0].end, 8.0);
}

TEST(TimelineHoles, BusyWindowStartingAtHorizonIsIgnored) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 10.0, 12.0);
  const auto holes = tl.holes(0, 10.0);
  ASSERT_EQ(holes.size(), 1u);
  EXPECT_DOUBLE_EQ(holes[0].start, 0.0);
  EXPECT_DOUBLE_EQ(holes[0].end, 10.0);
}

TEST(TimelineHoles, MiddleAndTailHolesEnumeratedInOrder) {
  Timeline tl(2);
  tl.occupy(ProcessorSet::of(2, {0}), 2.0, 4.0);
  tl.occupy(ProcessorSet::of(2, {0}), 6.0, 7.0);
  const auto holes = tl.holes(0, 9.0);
  ASSERT_EQ(holes.size(), 3u);
  EXPECT_DOUBLE_EQ(holes[0].start, 0.0);
  EXPECT_DOUBLE_EQ(holes[0].end, 2.0);
  EXPECT_DOUBLE_EQ(holes[1].start, 4.0);
  EXPECT_DOUBLE_EQ(holes[1].end, 6.0);
  EXPECT_DOUBLE_EQ(holes[2].start, 7.0);
  EXPECT_DOUBLE_EQ(holes[2].end, 9.0);
  // Busy + idle covers the horizon exactly.
  double idle = 0.0;
  for (const auto& h : holes) idle += h.end - h.start;
  EXPECT_DOUBLE_EQ(idle + 3.0, 9.0);
  // The untouched processor is one full-horizon hole.
  const auto other = tl.holes(1, 9.0);
  ASSERT_EQ(other.size(), 1u);
  EXPECT_DOUBLE_EQ(other[0].end - other[0].start, 9.0);
}

TEST(Timeline, BookingOutOfOrderKeepsSortedState) {
  Timeline tl(1);
  tl.occupy(ProcessorSet::of(1, {0}), 10.0, 12.0);
  tl.occupy(ProcessorSet::of(1, {0}), 2.0, 4.0);  // earlier hole booked later
  EXPECT_DOUBLE_EQ(tl.free_until(0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(tl.free_until(0, 4.0), 10.0);
  EXPECT_DOUBLE_EQ(tl.latest_free_time(0), 12.0);
}

TEST(Timeline, ReleaseRestoresTheWindow) {
  Timeline tl(2);
  const auto ps = ProcessorSet::of(2, {0, 1});
  tl.occupy(ps, 2.0, 5.0);
  tl.occupy(ProcessorSet::of(2, {0}), 7.0, 9.0);
  tl.release(ps, 2.0, 5.0);
  EXPECT_TRUE(tl.is_free(0, 0.0, 7.0));
  EXPECT_TRUE(tl.is_free(1, 0.0, 100.0));
  EXPECT_DOUBLE_EQ(tl.latest_free_time(0), 9.0);
}

// ---------------------------------------------------------------------------
// Property fuzz: every query vs a naive reference implementation
//
// The Timeline's augmented interval storage (sorted vectors, frontier
// fast path, Sweep cursor) must answer every query exactly as the obvious
// brute-force bookkeeping would. The fuzz drives both through the same
// random op stream — occupy, release, and the full query surface — on a
// grid of times chosen so abutting bookings, holes starting at t = 0, and
// bookings running past the probed horizon all occur frequently.

/// Brute-force shadow: unordered busy intervals per processor.
struct NaiveTimeline {
  std::vector<std::vector<std::pair<double, double>>> busy;

  explicit NaiveTimeline(std::size_t p) : busy(p) {}

  void occupy(const std::vector<ProcId>& ps, double s, double e) {
    if (e <= s) return;
    for (ProcId q : ps) busy[q].emplace_back(s, e);
  }
  void release(const std::vector<ProcId>& ps, double s, double e) {
    if (e <= s) return;
    for (ProcId q : ps) {
      auto& v = busy[q];
      for (std::size_t i = 0; i < v.size(); ++i)
        if (v[i].first == s && v[i].second == e) {
          v.erase(v.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
    }
  }
  bool is_free(ProcId q, double s, double e) const {
    for (const auto& iv : busy[q])
      if (iv.first < e && iv.second > s) return false;
    return true;
  }
  double free_until(ProcId q, double t) const {
    for (const auto& iv : busy[q])
      if (iv.first <= t && t < iv.second) return -1.0;
    double next = kForever;
    for (const auto& iv : busy[q])
      if (iv.first > t) next = std::min(next, iv.first);
    return next;
  }
  double latest_free_time(ProcId q) const {
    double latest = 0.0;
    for (const auto& iv : busy[q]) latest = std::max(latest, iv.second);
    return latest;
  }
  std::vector<double> candidate_times(double from) const {
    std::vector<double> out{from};
    for (const auto& v : busy)
      for (const auto& iv : v)
        if (iv.second > from) out.push_back(iv.second);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }
  std::vector<Timeline::FreeProc> available_at(double t) const {
    std::vector<Timeline::FreeProc> out;
    for (ProcId q = 0; q < busy.size(); ++q) {
      const double fu = free_until(q, t);
      if (fu >= 0.0) out.push_back({q, fu});
    }
    return out;
  }
  std::vector<Timeline::Hole> holes(ProcId q, double horizon) const {
    std::vector<Timeline::Hole> out;
    if (horizon <= 0.0) return out;
    auto v = busy[q];
    std::sort(v.begin(), v.end());
    double cursor = 0.0;
    for (const auto& iv : v) {
      const double s = std::min(iv.first, horizon);
      if (s > cursor) out.push_back({cursor, s});
      cursor = std::max(cursor, std::min(iv.second, horizon));
    }
    if (cursor < horizon) out.push_back({cursor, horizon});
    return out;
  }
};

void expect_queries_match(const Timeline& tl, const NaiveTimeline& naive,
                          Rng& rng, std::uint64_t seed) {
  const std::size_t P = tl.num_procs();
  // Probe instants: grid points (t = 0 included) so exact boundaries hit.
  std::vector<double> probes{0.0};
  for (int i = 0; i < 4; ++i)
    probes.push_back(0.25 * static_cast<double>(rng.uniform_int(0, 96)));
  for (const double t : probes) {
    for (ProcId q = 0; q < P; ++q) {
      EXPECT_EQ(tl.free_until(q, t) < 0.0, naive.free_until(q, t) < 0.0)
          << "seed " << seed << " q=" << q << " t=" << t;
      if (naive.free_until(q, t) >= 0.0)
        EXPECT_EQ(tl.free_until(q, t), naive.free_until(q, t))
            << "seed " << seed << " q=" << q << " t=" << t;
      const double e = t + 0.25 * static_cast<double>(rng.uniform_int(1, 24));
      EXPECT_EQ(tl.is_free(q, t, e), naive.is_free(q, t, e))
          << "seed " << seed << " q=" << q << " [" << t << "," << e << ")";
    }
    EXPECT_EQ(tl.candidate_times(t), naive.candidate_times(t))
        << "seed " << seed << " t=" << t;
    const auto a = tl.available_at(t);
    const auto b = naive.available_at(t);
    ASSERT_EQ(a.size(), b.size()) << "seed " << seed << " t=" << t;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].proc, b[i].proc) << "seed " << seed << " t=" << t;
      EXPECT_EQ(a[i].until, b[i].until) << "seed " << seed << " t=" << t;
    }
  }
  for (ProcId q = 0; q < P; ++q) {
    EXPECT_EQ(tl.latest_free_time(q), naive.latest_free_time(q))
        << "seed " << seed << " q=" << q;
    // Horizons: 0 (no holes), a mid-range value most bookings straddle,
    // and one past every booking (full trailing hole).
    for (const double horizon :
         {0.0, 0.25 * static_cast<double>(rng.uniform_int(1, 64)), 64.0}) {
      const auto h = tl.holes(q, horizon);
      const auto hn = naive.holes(q, horizon);
      ASSERT_EQ(h.size(), hn.size())
          << "seed " << seed << " q=" << q << " horizon=" << horizon;
      for (std::size_t i = 0; i < h.size(); ++i) {
        EXPECT_EQ(h[i].start, hn[i].start) << "seed " << seed << " q=" << q;
        EXPECT_EQ(h[i].end, hn[i].end) << "seed " << seed << " q=" << q;
      }
    }
  }
}

TEST(TimelineFuzz, MatchesNaiveReferenceAcrossSeeds) {
  constexpr std::uint64_t kSeeds = 220;
  // The generators below must actually exercise the boundary shapes the
  // suite exists for; count them and assert at the end.
  std::size_t holes_at_zero = 0, bookings_past_horizon = 0, releases = 0;

  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(0xf00dull * (seed + 1));
    const std::size_t P = static_cast<std::size_t>(rng.uniform_int(1, 4));
    Timeline tl(P);
    NaiveTimeline naive(P);
    struct Booking {
      std::vector<ProcId> procs;
      double start, end;
    };
    std::vector<Booking> live;

    const int ops = static_cast<int>(rng.uniform_int(10, 36));
    for (int op = 0; op < ops; ++op) {
      const double roll = rng.uniform();
      if (roll < 0.62 || live.empty()) {
        // Attempt a booking on a random subset over a coarse time grid
        // (multiples of 0.25 in [0, 20]) so abutting windows are common.
        std::vector<ProcId> ps;
        for (ProcId q = 0; q < P; ++q)
          if (rng.bernoulli(0.5)) ps.push_back(q);
        if (ps.empty()) ps.push_back(static_cast<ProcId>(
            rng.uniform_int(0, static_cast<std::int64_t>(P) - 1)));
        const double s = 0.25 * static_cast<double>(rng.uniform_int(0, 72));
        const double e = s + 0.25 * static_cast<double>(rng.uniform_int(0, 24));
        bool free = true;
        for (ProcId q : ps) free = free && naive.is_free(q, s, e);
        if (!free || e <= s) continue;  // only verified-free windows book
        ProcessorSet pset(P);
        for (ProcId q : ps) pset.insert(q);
        tl.occupy(pset, s, e);
        naive.occupy(ps, s, e);
        live.push_back({ps, s, e});
      } else {
        // Release a random live booking — the exact window, as the
        // scheduler's speculative undo does.
        const std::size_t i = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(live.size()) - 1));
        ProcessorSet pset(P);
        for (ProcId q : live[i].procs) pset.insert(q);
        tl.release(pset, live[i].start, live[i].end);
        naive.release(live[i].procs, live[i].start, live[i].end);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        ++releases;
      }
    }

    expect_queries_match(tl, naive, rng, seed);

    // Sweep cursor: ascending probes must equal available_at, including
    // after a mutation mid-sweep (epoch re-seek) and a non-monotone probe.
    Timeline::Sweep sweep(tl);
    std::vector<Timeline::FreeProc> got;
    std::vector<double> asc{0.0};
    for (int i = 0; i < 6; ++i)
      asc.push_back(0.25 * static_cast<double>(rng.uniform_int(0, 96)));
    std::sort(asc.begin(), asc.end());
    for (const double t : asc) {
      sweep.available_at(t, got);
      const auto want = naive.available_at(t);
      ASSERT_EQ(got.size(), want.size()) << "seed " << seed << " t=" << t;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].proc, want[i].proc) << "seed " << seed;
        EXPECT_EQ(got[i].until, want[i].until) << "seed " << seed;
      }
    }
    if (!live.empty()) {
      // Mutate under the sweep, then probe below the last instant: both
      // invalidation paths must transparently re-seek.
      const auto& b = live.back();
      ProcessorSet pset(P);
      for (ProcId q : b.procs) pset.insert(q);
      tl.release(pset, b.start, b.end);
      naive.release(b.procs, b.start, b.end);
      for (const double t : {asc.back(), 0.0, asc.front()}) {
        sweep.available_at(t, got);
        const auto want = naive.available_at(t);
        ASSERT_EQ(got.size(), want.size()) << "seed " << seed << " t=" << t;
        for (std::size_t i = 0; i < got.size(); ++i)
          EXPECT_EQ(got[i].until, want[i].until) << "seed " << seed;
      }
    }

    for (ProcId q = 0; q < P; ++q) {
      const auto h = tl.holes(q, 18.0);
      if (!h.empty() && h.front().start == 0.0) ++holes_at_zero;
      if (tl.latest_free_time(q) > 18.0) ++bookings_past_horizon;
    }
  }

  // The op mix must have covered the boundary shapes, not skirted them.
  EXPECT_GT(holes_at_zero, 50u);
  EXPECT_GT(bookings_past_horizon, 20u);
  EXPECT_GT(releases, 100u);
}

}  // namespace
}  // namespace locmps
