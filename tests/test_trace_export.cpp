#include "schedule/trace_export.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "schedulers/task_parallel.hpp"
#include "test_util.hpp"
#include "workloads/synthetic.hpp"

namespace locmps {
namespace {

TEST(TraceExport, EmitsSlicesForEveryProcessorOfATask) {
  const TaskGraph g = test::chain(1, 5.0, 2, 0.0);
  Schedule s(1, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0, 1}));
  const std::string json = chrome_trace(g, s);
  // One execution slice per processor.
  EXPECT_EQ(json.find("recv:"), std::string::npos);  // no busy prefix
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"name\":\"t0\"", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_NE(json.find("\"dur\":5e+06"), std::string::npos);
}

TEST(TraceExport, EmitsReceiveWindowOnNoOverlapSchedules) {
  const TaskGraph g = test::chain(1, 5.0, 2, 0.0);
  Schedule s(1, 2);
  s.place(0, 2.0, 3.0, 8.0, ProcessorSet::of(2, {0}));  // busy_from < start
  const std::string json = chrome_trace(g, s);
  EXPECT_NE(json.find("recv:t0"), std::string::npos);
}

TEST(TraceExport, NamesProcessorRows) {
  const TaskGraph g = test::chain(1, 5.0, 2, 0.0);
  Schedule s(1, 3);
  s.place(0, 0, 0, 5, ProcessorSet::of(3, {1}));
  const std::string json = chrome_trace(g, s);
  EXPECT_NE(json.find("\"name\":\"P0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"P2\""), std::string::npos);
}

TEST(TraceExport, EscapesAwkwardTaskNames) {
  TaskGraph g;
  g.add_task("we\"ird\\name", test::serial(1.0, 1));
  Schedule s(1, 1);
  s.place(0, 0, 0, 1, ProcessorSet::of(1, {0}));
  const std::string json = chrome_trace(g, s);
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);
}

TEST(TraceExport, RejectsIncompleteSchedule) {
  const TaskGraph g = test::chain(2);
  std::ostringstream os;
  EXPECT_THROW(write_chrome_trace(os, g, Schedule(2, 1)),
               std::invalid_argument);
}

TEST(TraceExport, RealScheduleProducesParsableShape) {
  SyntheticParams p;
  p.ccr = 0.3;
  p.max_procs = 4;
  Rng rng(93);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const SchedulerResult r = TaskParallelScheduler().schedule(g, Cluster(4));
  const std::string json = chrome_trace(g, r.schedule);
  // Crude structural checks: balanced braces/brackets, proper envelope.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace locmps
