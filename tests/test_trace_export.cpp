#include "schedule/trace_export.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/experiment.hpp"
#include "obs/metrics.hpp"
#include "schedulers/task_parallel.hpp"
#include "test_util.hpp"
#include "workloads/synthetic.hpp"

namespace locmps {
namespace {

using test::Json;

/// Parses a chrome trace and returns its traceEvents array.
std::vector<Json> trace_events(const std::string& json) {
  Json doc = test::parse_json(json);
  const Json* events = doc.get("traceEvents");
  EXPECT_NE(events, nullptr);
  EXPECT_TRUE(events != nullptr && events->is(Json::Kind::Array));
  return events != nullptr ? events->items : std::vector<Json>{};
}

/// Every "ts"/"dur" field in \p events must be a non-negative number.
void expect_non_negative_times(const std::vector<Json>& events) {
  for (const Json& e : events) {
    if (e.has("ts")) EXPECT_GE(e.num_or("ts", -1.0), 0.0);
    if (e.has("dur")) EXPECT_GE(e.num_or("dur", -1.0), 0.0);
  }
}

/// Builds a planner snapshot with two timers (one nested) and a series.
obs::MetricsSnapshot sample_planner() {
  obs::MetricsRegistry m;
  {
    obs::ScopedTimer outer(&m, "plan");
    obs::ScopedTimer inner(&m, "plan.inner");
  }
  m.sample("makespan", 20.0);
  m.sample("makespan", 15.0);
  return m.snapshot();
}

TEST(TraceExport, EmitsSlicesForEveryProcessorOfATask) {
  const TaskGraph g = test::chain(1, 5.0, 2, 0.0);
  Schedule s(1, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0, 1}));
  const std::string json = chrome_trace(g, s);
  // One execution slice per processor.
  EXPECT_EQ(json.find("recv:"), std::string::npos);  // no busy prefix
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"name\":\"t0\"", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_NE(json.find("\"dur\":5e+06"), std::string::npos);
}

TEST(TraceExport, EmitsReceiveWindowOnNoOverlapSchedules) {
  const TaskGraph g = test::chain(1, 5.0, 2, 0.0);
  Schedule s(1, 2);
  s.place(0, 2.0, 3.0, 8.0, ProcessorSet::of(2, {0}));  // busy_from < start
  const std::string json = chrome_trace(g, s);
  EXPECT_NE(json.find("recv:t0"), std::string::npos);
}

TEST(TraceExport, NamesProcessorRows) {
  const TaskGraph g = test::chain(1, 5.0, 2, 0.0);
  Schedule s(1, 3);
  s.place(0, 0, 0, 5, ProcessorSet::of(3, {1}));
  const std::string json = chrome_trace(g, s);
  EXPECT_NE(json.find("\"name\":\"P0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"P2\""), std::string::npos);
}

TEST(TraceExport, EscapesAwkwardTaskNames) {
  TaskGraph g;
  g.add_task("we\"ird\\name", test::serial(1.0, 1));
  Schedule s(1, 1);
  s.place(0, 0, 0, 1, ProcessorSet::of(1, {0}));
  const std::string json = chrome_trace(g, s);
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);
}

TEST(TraceExport, RejectsIncompleteSchedule) {
  const TaskGraph g = test::chain(2);
  std::ostringstream os;
  EXPECT_THROW(write_chrome_trace(os, g, Schedule(2, 1)),
               std::invalid_argument);
}

TEST(TraceExport, PlannerTrackRendersTimersAndCounterSeries) {
  const TaskGraph g = test::chain(1, 5.0, 2, 0.0);
  Schedule s(1, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0, 1}));
  const obs::MetricsSnapshot planner = sample_planner();
  const auto events = trace_events(chrome_trace(g, s, planner));

  bool planner_process = false, schedule_process = false;
  bool plan_thread = false, plan_slice = false;
  std::size_t counter_points = 0;
  for (const Json& e : events) {
    const std::string name = e.str_or("name");
    const std::string ph = e.str_or("ph");
    const double pid = e.num_or("pid", -1.0);
    const Json* args = e.get("args");
    if (ph == "M" && name == "process_name" && args != nullptr) {
      if (pid == 1.0 && args->str_or("name") == "planner")
        planner_process = true;
      if (pid == 0.0 && args->str_or("name") == "schedule")
        schedule_process = true;
    }
    if (ph == "M" && name == "thread_name" && pid == 1.0 &&
        args != nullptr && args->str_or("name") == "plan")
      plan_thread = true;
    if (ph == "X" && pid == 1.0 && name == "plan") plan_slice = true;
    if (ph == "C" && pid == 1.0 && name == "makespan") {
      ++counter_points;
      ASSERT_NE(args, nullptr);
      EXPECT_TRUE(args->has("value"));
    }
  }
  EXPECT_TRUE(planner_process);
  EXPECT_TRUE(schedule_process);
  EXPECT_TRUE(plan_thread);
  EXPECT_TRUE(plan_slice);
  EXPECT_EQ(counter_points, 2u);
  expect_non_negative_times(events);
}

TEST(TraceExport, EmptySchedulePlannerTraceIsWellFormed) {
  const TaskGraph g;  // no tasks
  const Schedule s(0, 2);
  const obs::MetricsSnapshot planner = sample_planner();
  const auto events = trace_events(chrome_trace(g, s, planner));
  // Only metadata, planner slices and counters — all with valid times.
  EXPECT_FALSE(events.empty());
  expect_non_negative_times(events);
  for (const Json& e : events)
    if (e.str_or("ph") == "X") EXPECT_EQ(e.num_or("pid", -1.0), 1.0);
}

TEST(TraceExport, NoOverlapModelTraceHasNonNegativeDurations) {
  // A no-overlap platform stretches receive windows (busy_from < start);
  // the exported trace must stay parsable with non-negative times, both
  // for the schedule slices and the planner track from the real run.
  SyntheticParams p;
  p.ccr = 1.0;
  p.max_procs = 4;
  Rng rng(11);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const SchemeRun run = evaluate_scheme(
      "loc-mps", g, Cluster(4, kFastEthernetBytesPerSec, false));
  const auto events = trace_events(chrome_trace(g, run.schedule,
                                                run.counters));
  expect_non_negative_times(events);
  bool has_schedule_slice = false, has_planner_slice = false;
  for (const Json& e : events) {
    if (e.str_or("ph") != "X") continue;
    if (e.num_or("pid", -1.0) == 0.0) has_schedule_slice = true;
    if (e.num_or("pid", -1.0) == 1.0) has_planner_slice = true;
  }
  EXPECT_TRUE(has_schedule_slice);
  EXPECT_TRUE(has_planner_slice);
}

TEST(TraceExport, RealScheduleProducesParsableShape) {
  SyntheticParams p;
  p.ccr = 0.3;
  p.max_procs = 4;
  Rng rng(93);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const SchedulerResult r = TaskParallelScheduler().schedule(g, Cluster(4));
  const std::string json = chrome_trace(g, r.schedule);
  // Crude structural checks: balanced braces/brackets, proper envelope.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace locmps
