#include "graph/transform.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "graph/algorithms.hpp"
#include "schedule/expand.hpp"
#include "schedulers/loc_mps.hpp"
#include "test_util.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/tce.hpp"

namespace locmps {
namespace {

using test::serial;

// -------------------------------------------------- transitive reduction --
TEST(TransitiveReduction, DropsImpliedZeroVolumeEdge) {
  TaskGraph g;  // a -> b -> c plus redundant a -> c (no data)
  const TaskId a = g.add_task("a", serial(1, 2));
  const TaskId b = g.add_task("b", serial(1, 2));
  const TaskId cc = g.add_task("c", serial(1, 2));
  g.add_edge(a, b, 0.0);
  g.add_edge(b, cc, 0.0);
  g.add_edge(a, cc, 0.0);
  const TaskGraph r = transitive_reduction(g);
  EXPECT_EQ(r.num_edges(), 2u);
  EXPECT_EQ(r.validate(), "");
}

TEST(TransitiveReduction, KeepsDataEdges) {
  TaskGraph g;  // the shortcut edge carries data -> must survive
  const TaskId a = g.add_task("a", serial(1, 2));
  const TaskId b = g.add_task("b", serial(1, 2));
  const TaskId cc = g.add_task("c", serial(1, 2));
  g.add_edge(a, b, 0.0);
  g.add_edge(b, cc, 0.0);
  g.add_edge(a, cc, 512.0);
  EXPECT_EQ(transitive_reduction(g).num_edges(), 3u);
}

TEST(TransitiveReduction, LeavesIrreducibleGraphAlone) {
  const TaskGraph g = test::diamond(10.0, 4, 0.0);
  const TaskGraph r = transitive_reduction(g);
  EXPECT_EQ(r.num_edges(), g.num_edges());
  EXPECT_EQ(r.num_tasks(), g.num_tasks());
}

TEST(TransitiveReduction, PreservesReachability) {
  SyntheticParams p;
  p.ccr = 0.0;  // all edges are pure precedence -> maximal reduction
  p.max_procs = 4;
  Rng rng(91);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const TaskGraph r = transitive_reduction(g);
  EXPECT_LE(r.num_edges(), g.num_edges());
  // Same reachability matrix.
  for (TaskId t : g.task_ids()) {
    const auto d1 = descendants(g, t);
    const auto d2 = descendants(r, t);
    EXPECT_EQ(d1, d2) << "task " << t;
  }
}

// ------------------------------------------------------- chain coarsening --
TEST(Coarsen, MergesAPureChainToOneTask) {
  const TaskGraph g = test::chain(5, 10.0, 4, 1e6);
  const Coarsening c = coarsen_chains(g);
  ASSERT_EQ(c.graph.num_tasks(), 1u);
  EXPECT_EQ(c.graph.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(c.graph.task(0).profile.serial_time(), 50.0);
  EXPECT_EQ(c.members[0].size(), 5u);
  for (TaskId t : g.task_ids()) EXPECT_EQ(c.member_of[t], 0u);
}

TEST(Coarsen, DiamondIsIrreducible) {
  const TaskGraph g = test::diamond();
  const Coarsening c = coarsen_chains(g);
  EXPECT_EQ(c.graph.num_tasks(), 4u);
  EXPECT_EQ(c.graph.num_edges(), 4u);
}

TEST(Coarsen, MixedGraphMergesOnlyChains) {
  // a -> b -> c -> d with an extra edge a -> d: only b -> c contractible
  // (b has 1 out, c has 1 in).
  TaskGraph g;
  const TaskId a = g.add_task("a", serial(1, 2));
  const TaskId b = g.add_task("b", serial(2, 2));
  const TaskId cc = g.add_task("c", serial(3, 2));
  const TaskId d = g.add_task("d", serial(4, 2));
  g.add_edge(a, b, 0.0);
  g.add_edge(b, cc, 7.0);
  g.add_edge(cc, d, 0.0);
  g.add_edge(a, d, 0.0);
  const Coarsening c = coarsen_chains(g);
  EXPECT_EQ(c.graph.num_tasks(), 3u);  // a, b+c, d
  EXPECT_EQ(c.member_of[b], c.member_of[cc]);
  // The internal b->c data edge is internalized.
  for (std::size_t e = 0; e < c.graph.num_edges(); ++e)
    EXPECT_NE(c.graph.edge(static_cast<EdgeId>(e)).volume_bytes, 7.0);
  EXPECT_EQ(c.graph.validate(), "");
}

TEST(Coarsen, CompositeProfileIsMemberwiseSum) {
  TaskGraph g;
  const TaskId a = g.add_task("a", test::profile({10, 6}));
  const TaskId b = g.add_task("b", test::profile({4, 2}));
  g.add_edge(a, b, 0.0);
  const Coarsening c = coarsen_chains(g);
  ASSERT_EQ(c.graph.num_tasks(), 1u);
  EXPECT_DOUBLE_EQ(c.graph.task(0).profile.time(1), 14.0);
  EXPECT_DOUBLE_EQ(c.graph.task(0).profile.time(2), 8.0);
}

TEST(Coarsen, ExpandedScheduleIsValidWithSameMakespan) {
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 8;
  p.min_tasks = 15;
  p.max_tasks = 25;
  Rng rng(92);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Coarsening c = coarsen_chains(g);
  const Cluster cl(8);
  const SchedulerResult coarse = LocMPSScheduler().schedule(c.graph, cl);
  const Schedule fine = expand_schedule(c, g, coarse.schedule);
  EXPECT_TRUE(fine.complete());
  EXPECT_NEAR(fine.makespan(), coarse.schedule.makespan(), 1e-9);
  // Precedence holds in the original graph (comm between members of one
  // composite is free: same processor set).
  EXPECT_EQ(fine.validate(g, CommModel(cl)), "");
}

TEST(Coarsen, CoarseningPreservesScheduleQuality) {
  // Scheduling the coarse graph must be no worse than ~15% off the direct
  // schedule on chain-rich graphs (often identical or better: fewer
  // decisions).
  TCEParams tp;
  tp.occupied = 8;
  tp.virt = 32;
  tp.max_procs = 8;
  const TaskGraph g = make_ccsd_t1(tp);
  const Coarsening c = coarsen_chains(g);
  EXPECT_LT(c.graph.num_tasks(), g.num_tasks());  // the acc chain merges
  const Cluster cl(8, 250e6);
  const double direct =
      LocMPSScheduler().schedule(g, cl).estimated_makespan;
  const double coarse =
      LocMPSScheduler().schedule(c.graph, cl).estimated_makespan;
  EXPECT_LE(coarse, direct * 1.15);
}

TEST(Coarsen, ExpandRejectsIncompleteSchedule) {
  const TaskGraph g = test::chain(3);
  const Coarsening c = coarsen_chains(g);
  EXPECT_THROW(expand_schedule(c, g, Schedule(1, 2)), std::invalid_argument);
}

}  // namespace
}  // namespace locmps
