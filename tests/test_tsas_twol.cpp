#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "schedule/event_sim.hpp"
#include "schedulers/registry.hpp"
#include "schedulers/tsas.hpp"
#include "schedulers/twol.hpp"
#include "test_util.hpp"
#include "workloads/synthetic.hpp"

namespace locmps {
namespace {

TaskGraph random_graph(std::uint64_t seed, double ccr) {
  SyntheticParams p;
  p.ccr = ccr;
  p.max_procs = 8;
  p.min_tasks = 10;
  p.max_tasks = 20;
  Rng rng(seed);
  return make_synthetic_dag(p, rng);
}

// ---------------------------------------------------------------- TSAS --
TEST(TSAS, WidensScalableChain) {
  test::LinearSpeedup lin;
  TaskGraph g;
  const TaskId a = g.add_task("a", ExecutionProfile(lin, 40.0, 4));
  const TaskId b = g.add_task("b", ExecutionProfile(lin, 40.0, 4));
  g.add_edge(a, b, 0.0);
  const SchedulerResult r = TSASScheduler().schedule(g, Cluster(4));
  // A chain is all critical path: the balance point is full width.
  EXPECT_LT(r.estimated_makespan, 80.0);
  EXPECT_GT(r.allocation[a], 1u);
}

TEST(TSAS, BalancesCriticalPathAgainstArea) {
  // Many independent serial tasks: the area term forbids widening.
  TaskGraph g;
  for (int i = 0; i < 8; ++i)
    g.add_task("t", test::serial(10.0, 8));
  const SchedulerResult r = TSASScheduler().schedule(g, Cluster(8));
  for (TaskId t : g.task_ids()) EXPECT_EQ(r.allocation[t], 1u);
  EXPECT_DOUBLE_EQ(r.estimated_makespan, 10.0);
}

TEST(TSAS, ProducesValidSchedules) {
  for (std::uint64_t seed : {41, 42}) {
    const TaskGraph g = random_graph(seed, 1.0);
    const Cluster c(8);
    const SchedulerResult r = TSASScheduler().schedule(g, c);
    EXPECT_EQ(r.schedule.validate(g, CommModel(c)), "") << seed;
    for (TaskId t : g.task_ids()) {
      EXPECT_GE(r.allocation[t], 1u);
      EXPECT_LE(r.allocation[t], 8u);
    }
  }
}

// ---------------------------------------------------------------- TwoL --
TEST(TwoL, RespectsLayerBarriers) {
  // Diamond: layer 0 = {a}, layer 1 = {b, c}, layer 2 = {d}. No task of a
  // later layer may start before every task of the previous layer ends.
  const TaskGraph g = test::diamond(10.0, 4, 0.0);
  const Cluster c(4);
  const SchedulerResult r = TwoLScheduler().schedule(g, c);
  EXPECT_EQ(r.schedule.validate(g, CommModel(c)), "");
  const double l0_end = r.schedule.at(0).finish;
  EXPECT_GE(r.schedule.at(1).start, l0_end - 1e-9);
  EXPECT_GE(r.schedule.at(2).start, l0_end - 1e-9);
  const double l1_end =
      std::max(r.schedule.at(1).finish, r.schedule.at(2).finish);
  EXPECT_GE(r.schedule.at(3).start, l1_end - 1e-9);
}

TEST(TwoL, SplitsLayerProportionallyToWork) {
  test::LinearSpeedup lin;
  TaskGraph g;
  const TaskId root = g.add_task("r", test::serial(1.0, 8));
  const TaskId big = g.add_task("big", ExecutionProfile(lin, 60.0, 8));
  const TaskId small = g.add_task("small", ExecutionProfile(lin, 20.0, 8));
  g.add_edge(root, big, 0.0);
  g.add_edge(root, small, 0.0);
  const SchedulerResult r = TwoLScheduler().schedule(g, Cluster(8));
  EXPECT_GT(r.allocation[big], r.allocation[small]);
  EXPECT_EQ(r.allocation[big] + r.allocation[small], 8u);
}

TEST(TwoL, HandlesLayersWiderThanMachine) {
  TaskGraph g;
  const TaskId root = g.add_task("r", test::serial(1.0, 2));
  for (int i = 0; i < 5; ++i) {
    const TaskId t = g.add_task("w", test::serial(2.0, 2));
    g.add_edge(root, t, 0.0);
  }
  const Cluster c(2);
  const SchedulerResult r = TwoLScheduler().schedule(g, c);
  EXPECT_EQ(r.schedule.validate(g, CommModel(c)), "");
  // 5 unit-proc tasks on 2 processors in barrier batches of 2.
  EXPECT_GE(r.estimated_makespan, 1.0 + 3 * 2.0 - 1e-9);
}

TEST(TwoL, ProducesValidSchedules) {
  for (std::uint64_t seed : {43, 44}) {
    const TaskGraph g = random_graph(seed, 0.5);
    const Cluster c(8);
    const SchedulerResult r = TwoLScheduler().schedule(g, c);
    EXPECT_EQ(r.schedule.validate(g, CommModel(c)), "") << seed;
  }
}

// ------------------------------------------------- vs integrated schemes --
TEST(Baselines, LocMPSBeatsTwoStepSchemesOnAverage) {
  // The paper's motivation for single-step scheduling: decoupled
  // allocation (TSAS) and layer barriers (TwoL) cost real performance.
  double mps = 0.0, tsas = 0.0, twol = 0.0;
  const Cluster c(8);
  for (std::uint64_t seed : {51, 52, 53, 54}) {
    const TaskGraph g = random_graph(seed, 0.5);
    mps += evaluate_scheme("loc-mps", g, c).makespan;
    tsas += evaluate_scheme("tsas", g, c).makespan;
    twol += evaluate_scheme("twol", g, c).makespan;
  }
  EXPECT_LT(mps, tsas);
  EXPECT_LT(mps, twol);
}

TEST(Registry, KnowsNewBaselines) {
  EXPECT_EQ(make_scheduler("tsas")->name(), "TSAS");
  EXPECT_EQ(make_scheduler("twol")->name(), "TwoL");
  EXPECT_FALSE(scheme_exploits_locality("tsas"));
  EXPECT_TRUE(scheme_exploits_locality("twol"));
}

}  // namespace
}  // namespace locmps
