#pragma once
/// Shared helpers for the test suite.

#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "graph/task_graph.hpp"
#include "obs/analysis.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "schedulers/loc_mps.hpp"
#include "speedup/model.hpp"
#include "speedup/profile.hpp"

namespace locmps::test {

/// Perfectly linear speedup, handy for hand-computable examples.
class LinearSpeedup final : public SpeedupModel {
 public:
  double speedup(std::size_t n) const override {
    return static_cast<double>(n);
  }
};

/// Profile from an explicit time table.
inline ExecutionProfile profile(std::vector<double> times) {
  return ExecutionProfile(std::move(times));
}

/// A serial task profile (no benefit from extra processors).
inline ExecutionProfile serial(double t, std::size_t max_procs) {
  return ExecutionProfile::constant(t, max_procs);
}

/// Diamond graph: a -> b, a -> c, b -> d, c -> d with unit-volume edges.
inline TaskGraph diamond(double t = 10.0, std::size_t max_procs = 8,
                         double volume = 0.0) {
  TaskGraph g;
  const TaskId a = g.add_task("a", serial(t, max_procs));
  const TaskId b = g.add_task("b", serial(t, max_procs));
  const TaskId c = g.add_task("c", serial(t, max_procs));
  const TaskId d = g.add_task("d", serial(t, max_procs));
  g.add_edge(a, b, volume);
  g.add_edge(a, c, volume);
  g.add_edge(b, d, volume);
  g.add_edge(c, d, volume);
  return g;
}

/// Chain graph t0 -> t1 -> ... -> t{n-1}.
inline TaskGraph chain(std::size_t n, double t = 10.0,
                       std::size_t max_procs = 8, double volume = 0.0) {
  TaskGraph g;
  for (std::size_t i = 0; i < n; ++i)
    g.add_task("t" + std::to_string(i), serial(t, max_procs));
  for (std::size_t i = 0; i + 1 < n; ++i)
    g.add_edge(static_cast<TaskId>(i), static_cast<TaskId>(i + 1), volume);
  return g;
}

// ---------------------------------------------------------------------------
// Minimal strict JSON parser, used to validate the observability layer's
// output (JSONL decision traces, chrome traces) without an external
// dependency. Throws std::runtime_error on any malformed input.

struct Json {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> items;                            // Kind::Array
  std::vector<std::pair<std::string, Json>> members;  // Kind::Object

  bool is(Kind k) const { return kind == k; }
  /// Object member by key; nullptr when absent or not an object.
  const Json* get(std::string_view key) const {
    if (kind != Kind::Object) return nullptr;
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }
  bool has(std::string_view key) const { return get(key) != nullptr; }
  /// Member number by key, \p fallback when absent / not a number.
  double num_or(std::string_view key, double fallback) const {
    const Json* v = get(key);
    return v != nullptr && v->kind == Kind::Number ? v->number : fallback;
  }
  /// Member string by key, empty when absent / not a string.
  std::string str_or(std::string_view key) const {
    const Json* v = get(key);
    return v != nullptr && v->kind == Kind::String ? v->str : std::string();
  }
};

namespace detail {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* why) const {
    throw std::runtime_error("json: " + std::string(why) + " at offset " +
                             std::to_string(pos_));
  }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }
  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else fail("bad \\u escape");
          }
          // Tests only need ASCII round-trips; encode BMP as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    const std::string tok(s_.substr(start, pos_ - start));
    char* end = nullptr;
    Json v;
    v.kind = Json::Kind::Number;
    v.number = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0' || tok.empty()) fail("bad number");
    return v;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    Json v;
    if (c == '{') {
      ++pos_;
      v.kind = Json::Kind::Object;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        v.members.emplace_back(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = Json::Kind::Array;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v.items.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = Json::Kind::String;
      v.str = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      v.kind = Json::Kind::Bool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = Json::Kind::Bool;
      return v;
    }
    if (consume_literal("null")) return v;
    return parse_number();
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses \p text as one JSON document (strict; throws on any error).
inline Json parse_json(std::string_view text) {
  return detail::JsonParser(text).parse_document();
}

// ---------------------------------------------------------------------------
// Minimal strict XML parser, used to validate the HTML/SVG schedule
// reports (obs/report.hpp emits strict XHTML: every element closed,
// attributes quoted, text escaped). Throws std::runtime_error on any
// malformed input. No DTD/PI support — strip the `<!DOCTYPE html>` line
// before parsing (see parse_xhtml_report).

struct Xml {
  std::string tag;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<Xml> children;
  std::string text;  ///< concatenated character data of this element

  /// Attribute value by name; nullptr when absent.
  const std::string* attr(std::string_view name) const {
    for (const auto& [k, v] : attrs)
      if (k == name) return &v;
    return nullptr;
  }
  /// Depth-first search for the element with id="\p id"; nullptr if none.
  const Xml* find_by_id(std::string_view id) const {
    const std::string* a = attr("id");
    if (a != nullptr && *a == id) return this;
    for (const Xml& c : children)
      if (const Xml* hit = c.find_by_id(id)) return hit;
    return nullptr;
  }
  /// Depth-first count of elements with tag \p t (including this one).
  std::size_t count_tag(std::string_view t) const {
    std::size_t n = tag == t ? 1 : 0;
    for (const Xml& c : children) n += c.count_tag(t);
    return n;
  }
};

namespace detail {

class XmlParser {
 public:
  explicit XmlParser(std::string_view text) : s_(text) {}

  Xml parse_document() {
    skip_ws();
    Xml root = parse_element();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const char* why) const {
    throw std::runtime_error("xml: " + std::string(why) + " at offset " +
                             std::to_string(pos_));
  }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }
  static bool name_char(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '-' || c == '_' || c == ':' ||
           c == '.';
  }
  std::string parse_name() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() && name_char(s_[pos_])) ++pos_;
    if (pos_ == start) fail("expected a name");
    return std::string(s_.substr(start, pos_ - start));
  }
  void append_entity(std::string& out) {
    // At '&'. Only the five predefined entities and numeric refs.
    ++pos_;
    const std::size_t semi = s_.find(';', pos_);
    if (semi == std::string_view::npos || semi - pos_ > 8)
      fail("unterminated entity reference");
    const std::string_view ent = s_.substr(pos_, semi - pos_);
    pos_ = semi + 1;
    if (ent == "amp") out += '&';
    else if (ent == "lt") out += '<';
    else if (ent == "gt") out += '>';
    else if (ent == "quot") out += '"';
    else if (ent == "apos") out += '\'';
    else if (!ent.empty() && ent[0] == '#') {
      const bool hex = ent.size() > 1 && ent[1] == 'x';
      const std::string num(ent.substr(hex ? 2 : 1));
      char* end = nullptr;
      const long code = std::strtol(num.c_str(), &end, hex ? 16 : 10);
      if (end == nullptr || *end != '\0' || code <= 0)
        fail("bad numeric character reference");
      if (code < 0x80) {
        out += static_cast<char>(code);
      } else if (code < 0x800) {
        out += static_cast<char>(0xC0 | (code >> 6));
        out += static_cast<char>(0x80 | (code & 0x3F));
      } else {
        out += static_cast<char>(0xE0 | (code >> 12));
        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (code & 0x3F));
      }
    } else {
      fail("unknown entity reference");
    }
  }
  std::string parse_attr_value() {
    const char quote = peek();
    if (quote != '"' && quote != '\'') fail("unquoted attribute value");
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated attribute value");
      const char c = s_[pos_];
      if (c == quote) {
        ++pos_;
        return out;
      }
      if (c == '<') fail("raw '<' in attribute value");
      if (c == '&') {
        append_entity(out);
        continue;
      }
      out += c;
      ++pos_;
    }
  }

  Xml parse_element() {
    if (peek() != '<') fail("expected '<'");
    ++pos_;
    Xml el;
    el.tag = parse_name();
    while (true) {
      skip_ws();
      const char c = peek();
      if (c == '/') {
        ++pos_;
        if (peek() != '>') fail("malformed empty-element tag");
        ++pos_;
        return el;
      }
      if (c == '>') {
        ++pos_;
        break;
      }
      std::string key = parse_name();
      skip_ws();
      if (peek() != '=') fail("attribute without value");
      ++pos_;
      skip_ws();
      el.attrs.emplace_back(std::move(key), parse_attr_value());
    }
    // Content: character data, child elements, comments.
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated element");
      const char c = s_[pos_];
      if (c == '<') {
        if (s_.substr(pos_, 4) == "<!--") {
          const std::size_t end = s_.find("-->", pos_ + 4);
          if (end == std::string_view::npos) fail("unterminated comment");
          pos_ = end + 3;
          continue;
        }
        if (pos_ + 1 < s_.size() && s_[pos_ + 1] == '/') {
          pos_ += 2;
          const std::string close = parse_name();
          if (close != el.tag) fail("mismatched closing tag");
          skip_ws();
          if (peek() != '>') fail("malformed closing tag");
          ++pos_;
          return el;
        }
        el.children.push_back(parse_element());
        continue;
      }
      if (c == '&') {
        append_entity(el.text);
        continue;
      }
      el.text += c;
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses \p text as one XML document (strict; throws on any error).
inline Xml parse_xml(std::string_view text) {
  return detail::XmlParser(text).parse_document();
}

/// Parses the output of obs::write_html_report: requires and strips the
/// leading `<!DOCTYPE html>` line, then parses the rest as XML.
inline Xml parse_xhtml_report(std::string_view report) {
  constexpr std::string_view kDoctype = "<!DOCTYPE html>\n";
  if (report.substr(0, kDoctype.size()) != kDoctype)
    throw std::runtime_error("report does not start with <!DOCTYPE html>");
  return parse_xml(report.substr(kDoctype.size()));
}

// ---------------------------------------------------------------------------
// Differential-equivalence checking, shared by the scheduler determinism
// walls: the parallel-probe suite (test_parallel_locmps.cpp) and the
// incremental-replanning oracle (test_incremental.cpp) assert the same
// contract — two LoC-MPS runs that differ only in an execution knob
// (thread count, incremental on/off) must be observably identical.
//
// "Identical" means: placements (busy_from/start/finish/procs), makespan,
// iteration and locbs-call counts, every counter outside the
// digest-excluded families, every sample-series value, the full decision
// -event stream when both runs traced, and the post-mortem analysis.
// Byte-volume counters (`*_bytes`) are floating-point sums whose addition
// tree may legally differ across probe merges; they reconcile to 1e-9
// relative instead of bit-equality (docs/parallelism.md).

/// Everything one instrumented LoC-MPS run produces.
struct RunCapture {
  SchedulerResult result;
  obs::MetricsSnapshot metrics;
  std::vector<obs::Event> events;
};

/// Counters that legitimately differ between equivalent runs:
///  * locmps.parallel.* — accounting of the speculative fan-out itself
///    (batches, probes, wall time), absent at threads = 1;
///  * incr.* — accounting of the incremental replay path (dirty tasks,
///    cache hits, full rebuilds), different by construction between the
///    incremental and from-scratch sides of the differential oracle.
inline bool digest_excluded(const std::string& name) {
  return name.rfind("locmps.parallel.", 0) == 0 ||
         name.rfind("incr.", 0) == 0;
}

/// Runs LoC-MPS once with full instrumentation and captures the output.
inline RunCapture run_locmps_capture(const TaskGraph& g,
                                     const Cluster& cluster,
                                     const LocMPSOptions& opt,
                                     bool with_sink) {
  LocMPSScheduler sched(opt);
  obs::MetricsRegistry reg;
  obs::EventBuffer buf;
  obs::ObsContext ctx{&reg, with_sink ? &buf : nullptr};
  sched.attach_observability(&ctx);
  RunCapture cap{sched.schedule(g, cluster), {}, {}};
  cap.metrics = reg.snapshot();
  cap.events = buf.events();
  return cap;
}

/// Asserts two runs of the same workload are observably identical (see
/// block comment above). \p ref is the reference side (sequential /
/// from-scratch), \p alt the side under test; \p label prefixes every
/// failure message.
class DifferentialChecker {
 public:
  explicit DifferentialChecker(const TaskGraph& g) : g_(&g) {}

  void expect_identical(const RunCapture& ref, const RunCapture& alt,
                        const std::string& label) const {
    expect_same_schedule(ref, alt, label);
    expect_same_counters(ref.metrics, alt.metrics, label);
    expect_same_series_values(ref.metrics, alt.metrics, label);
    expect_same_events(ref.events, alt.events, label);
  }

  void expect_same_schedule(const RunCapture& ref, const RunCapture& alt,
                            const std::string& label) const {
    EXPECT_EQ(ref.result.estimated_makespan, alt.result.estimated_makespan)
        << label;
    EXPECT_EQ(ref.result.iterations, alt.result.iterations) << label;
    ASSERT_EQ(ref.result.allocation, alt.result.allocation) << label;
    for (TaskId t : g_->task_ids()) {
      const Placement& a = ref.result.schedule.at(t);
      const Placement& b = alt.result.schedule.at(t);
      EXPECT_EQ(a.busy_from, b.busy_from) << label << ": task " << t;
      EXPECT_EQ(a.start, b.start) << label << ": task " << t;
      EXPECT_EQ(a.finish, b.finish) << label << ": task " << t;
      EXPECT_TRUE(a.procs == b.procs) << label << ": task " << t;
    }
    EXPECT_EQ(ref.metrics.counter("locmps.locbs_calls"),
              alt.metrics.counter("locmps.locbs_calls"))
        << label;
  }

  void expect_same_counters(const obs::MetricsSnapshot& ref,
                            const obs::MetricsSnapshot& alt,
                            const std::string& label) const {
    auto filter = [](const obs::MetricsSnapshot& s) {
      std::vector<std::pair<std::string, double>> out;
      for (const auto& kv : s.counters)
        if (!digest_excluded(kv.first)) out.push_back(kv);
      return out;
    };
    const auto a = filter(ref), b = filter(alt);
    ASSERT_EQ(a.size(), b.size()) << label;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].first, b[i].first) << label;
      if (a[i].second == b[i].second) continue;
      // Byte volumes reconcile within ULPs; everything else bit-equal.
      EXPECT_TRUE(a[i].first.ends_with("_bytes"))
          << label << ": " << a[i].first << " differs (" << a[i].second
          << " vs " << b[i].second << ")";
      EXPECT_NEAR(a[i].second, b[i].second, 1e-9 * std::abs(a[i].second))
          << label << ": " << a[i].first;
    }
  }

  void expect_same_series_values(const obs::MetricsSnapshot& ref,
                                 const obs::MetricsSnapshot& alt,
                                 const std::string& label) const {
    ASSERT_EQ(ref.series.size(), alt.series.size()) << label;
    for (std::size_t i = 0; i < ref.series.size(); ++i) {
      EXPECT_EQ(ref.series[i].name, alt.series[i].name) << label;
      ASSERT_EQ(ref.series[i].points.size(), alt.series[i].points.size())
          << label << ": " << ref.series[i].name;
      // Timestamps are wall-clock and differ; recorded values must not.
      for (std::size_t p = 0; p < ref.series[i].points.size(); ++p)
        EXPECT_EQ(ref.series[i].points[p].value,
                  alt.series[i].points[p].value)
            << label << ": " << ref.series[i].name << "[" << p << "]";
    }
  }

  void expect_same_events(const std::vector<obs::Event>& ref,
                          const std::vector<obs::Event>& alt,
                          const std::string& label) const {
    ASSERT_EQ(ref.size(), alt.size()) << label;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i].name(), alt[i].name()) << label << ": event " << i;
      EXPECT_TRUE(ref[i].fields() == alt[i].fields())
          << label << ": fields of event " << i << " (" << ref[i].name()
          << ")";
    }
  }

  /// Asserts the post-mortem analyses of both schedules agree: same
  /// makespan decomposition, utilization, hole accounting, and locality
  /// totals (`*_bytes` to 1e-9 relative, everything else exactly).
  void expect_same_analysis(const obs::ScheduleAnalysis& ref,
                            const obs::ScheduleAnalysis& alt,
                            const std::string& label) const {
    EXPECT_EQ(ref.makespan, alt.makespan) << label;
    EXPECT_EQ(ref.mean_utilization, alt.mean_utilization) << label;
    EXPECT_EQ(ref.holes.total_holes, alt.holes.total_holes) << label;
    EXPECT_EQ(ref.holes.total_idle_s, alt.holes.total_idle_s) << label;
    auto near_bytes = [&](double a, double b, const char* what) {
      EXPECT_NEAR(a, b, 1e-9 * std::abs(a)) << label << ": " << what;
    };
    near_bytes(ref.locality.total_bytes, alt.locality.total_bytes,
               "total_bytes");
    near_bytes(ref.locality.local_bytes, alt.locality.local_bytes,
               "local_bytes");
    near_bytes(ref.locality.remote_bytes, alt.locality.remote_bytes,
               "remote_bytes");
    EXPECT_EQ(ref.locality.local_edges, alt.locality.local_edges) << label;
    EXPECT_EQ(ref.locality.partial_edges, alt.locality.partial_edges)
        << label;
    EXPECT_EQ(ref.locality.remote_edges, alt.locality.remote_edges)
        << label;
    ASSERT_EQ(ref.blame.size(), alt.blame.size()) << label;
    for (std::size_t i = 0; i < ref.blame.size(); ++i) {
      EXPECT_EQ(ref.blame[i].kind, alt.blame[i].kind)
          << label << ": blame of task " << i;
      EXPECT_EQ(ref.blame[i].delay_s, alt.blame[i].delay_s)
          << label << ": blame of task " << i;
    }
  }

 private:
  const TaskGraph* g_;
};

}  // namespace locmps::test
