#pragma once
/// Shared helpers for the test suite.

#include <cstddef>
#include <vector>

#include "graph/task_graph.hpp"
#include "speedup/model.hpp"
#include "speedup/profile.hpp"

namespace locmps::test {

/// Perfectly linear speedup, handy for hand-computable examples.
class LinearSpeedup final : public SpeedupModel {
 public:
  double speedup(std::size_t n) const override {
    return static_cast<double>(n);
  }
};

/// Profile from an explicit time table.
inline ExecutionProfile profile(std::vector<double> times) {
  return ExecutionProfile(std::move(times));
}

/// A serial task profile (no benefit from extra processors).
inline ExecutionProfile serial(double t, std::size_t max_procs) {
  return ExecutionProfile::constant(t, max_procs);
}

/// Diamond graph: a -> b, a -> c, b -> d, c -> d with unit-volume edges.
inline TaskGraph diamond(double t = 10.0, std::size_t max_procs = 8,
                         double volume = 0.0) {
  TaskGraph g;
  const TaskId a = g.add_task("a", serial(t, max_procs));
  const TaskId b = g.add_task("b", serial(t, max_procs));
  const TaskId c = g.add_task("c", serial(t, max_procs));
  const TaskId d = g.add_task("d", serial(t, max_procs));
  g.add_edge(a, b, volume);
  g.add_edge(a, c, volume);
  g.add_edge(b, d, volume);
  g.add_edge(c, d, volume);
  return g;
}

/// Chain graph t0 -> t1 -> ... -> t{n-1}.
inline TaskGraph chain(std::size_t n, double t = 10.0,
                       std::size_t max_procs = 8, double volume = 0.0) {
  TaskGraph g;
  for (std::size_t i = 0; i < n; ++i)
    g.add_task("t" + std::to_string(i), serial(t, max_procs));
  for (std::size_t i = 0; i + 1 < n; ++i)
    g.add_edge(static_cast<TaskId>(i), static_cast<TaskId>(i + 1), volume);
  return g;
}

}  // namespace locmps::test
