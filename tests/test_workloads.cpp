#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.hpp"
#include "workloads/strassen.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/tce.hpp"

namespace locmps {
namespace {

// ----------------------------------------------------------- synthetic --
TEST(Synthetic, DeterministicInSeed) {
  SyntheticParams p;
  p.ccr = 0.5;
  Rng r1(42), r2(42);
  const TaskGraph a = make_synthetic_dag(p, r1);
  const TaskGraph b = make_synthetic_dag(p, r2);
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t e = 0; e < a.num_edges(); ++e)
    EXPECT_DOUBLE_EQ(a.edge(e).volume_bytes, b.edge(e).volume_bytes);
}

TEST(Synthetic, TaskCountWithinRange) {
  SyntheticParams p;
  p.min_tasks = 10;
  p.max_tasks = 50;
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const TaskGraph g = make_synthetic_dag(p, rng);
    EXPECT_GE(g.num_tasks(), 10u);
    EXPECT_LE(g.num_tasks(), 50u);
    EXPECT_EQ(g.validate(), "");
  }
}

TEST(Synthetic, AverageDegreeNearTarget) {
  SyntheticParams p;
  p.min_tasks = 40;
  p.max_tasks = 50;
  p.avg_degree = 4.0;
  Rng rng(9);
  double total_ratio = 0.0;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    const TaskGraph g = make_synthetic_dag(p, rng);
    total_ratio += static_cast<double>(g.num_edges()) /
                   static_cast<double>(g.num_tasks());
  }
  EXPECT_NEAR(total_ratio / n, 4.0, 1.0);
}

TEST(Synthetic, SerialTimesHaveRequestedMean) {
  SyntheticParams p;
  p.min_tasks = 50;
  p.max_tasks = 50;
  Rng rng(11);
  double sum = 0.0;
  std::size_t count = 0;
  for (int i = 0; i < 40; ++i) {
    const TaskGraph g = make_synthetic_dag(p, rng);
    for (TaskId t : g.task_ids()) sum += g.task(t).profile.serial_time();
    count += g.num_tasks();
  }
  EXPECT_NEAR(sum / static_cast<double>(count), 30.0, 2.0);
}

TEST(Synthetic, CcrZeroMeansNoData) {
  SyntheticParams p;
  p.ccr = 0.0;
  Rng rng(13);
  const TaskGraph g = make_synthetic_dag(p, rng);
  for (std::size_t e = 0; e < g.num_edges(); ++e)
    EXPECT_DOUBLE_EQ(g.edge(e).volume_bytes, 0.0);
}

TEST(Synthetic, CcrScalesCommunication) {
  // Mean edge cost at np=1 should be ~ mean_serial_time * ccr.
  SyntheticParams p;
  p.ccr = 1.0;
  p.min_tasks = 50;
  p.max_tasks = 50;
  Rng rng(17);
  double cost_sum = 0.0;
  std::size_t edges = 0;
  for (int i = 0; i < 40; ++i) {
    const TaskGraph g = make_synthetic_dag(p, rng);
    for (std::size_t e = 0; e < g.num_edges(); ++e)
      cost_sum += g.edge(e).volume_bytes / p.bandwidth_Bps;
    edges += g.num_edges();
  }
  EXPECT_NEAR(cost_sum / static_cast<double>(edges), 30.0, 2.0);
}

TEST(Synthetic, SuiteIsDeterministicAndIndependent) {
  SyntheticParams p;
  const auto s1 = make_synthetic_suite(p, 5, 99);
  const auto s2 = make_synthetic_suite(p, 5, 99);
  ASSERT_EQ(s1.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(s1[i].num_tasks(), s2[i].num_tasks());
  // Different seeds give different suites.
  const auto s3 = make_synthetic_suite(p, 5, 100);
  bool any_diff = false;
  for (std::size_t i = 0; i < 5; ++i)
    any_diff |= s1[i].num_tasks() != s3[i].num_tasks();
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, ProfilesFollowDowneyShape) {
  SyntheticParams p;
  p.amax = 64.0;
  p.sigma = 1.0;
  p.max_procs = 64;
  Rng rng(19);
  const TaskGraph g = make_synthetic_dag(p, rng);
  for (TaskId t : g.task_ids()) {
    const auto& prof = g.task(t).profile;
    EXPECT_EQ(prof.max_procs(), 64u);
    // Non-increasing in p (Downey speedups are non-decreasing).
    for (std::size_t n = 1; n < 64; ++n)
      EXPECT_LE(prof.time(n + 1), prof.time(n) + 1e-9);
  }
}

// ----------------------------------------------------------------- TCE --
TEST(TCE, GraphIsValidWithSourceAndSink) {
  const TaskGraph g = make_ccsd_t1();
  EXPECT_EQ(g.validate(), "");
  // Contractions over pre-distributed inputs are the sources (Fig 7a).
  EXPECT_EQ(g.sources().size(), 9u);
  EXPECT_EQ(g.sinks().size(), 1u);  // the residual accumulation
  EXPECT_EQ(g.task(g.sinks()[0]).name, "residual");
}

TEST(TCE, HasFewLargeAndManySmallTasks) {
  const TaskGraph g = make_ccsd_t1();
  std::vector<double> times;
  for (TaskId t : g.task_ids())
    times.push_back(g.task(t).profile.serial_time());
  std::sort(times.begin(), times.end());
  // The largest contraction (O(o^2 v^3)) dwarfs the median task.
  EXPECT_GT(times.back(), 20.0 * times[times.size() / 2]);
}

TEST(TCE, LargeTasksScaleSmallTasksDoNot) {
  const TCEParams p;
  const TaskGraph g = make_ccsd_t1(p);
  double best_speedup = 0.0, worst_speedup = 1e30;
  for (TaskId t : g.task_ids()) {
    const auto& prof = g.task(t).profile;
    const double s = prof.speedup(64);
    best_speedup = std::max(best_speedup, s);
    worst_speedup = std::min(worst_speedup, s);
  }
  EXPECT_GT(best_speedup, 16.0);
  EXPECT_LT(worst_speedup, 4.0);
}

TEST(TCE, ProblemSizeScalesWork) {
  TCEParams small;
  small.occupied = 8;
  small.virt = 32;
  TCEParams big;
  big.occupied = 16;
  big.virt = 64;
  EXPECT_GT(make_ccsd_t1(big).total_serial_work(),
            8.0 * make_ccsd_t1(small).total_serial_work());
}

TEST(TCE, AccumulationChainIsSequential) {
  const TaskGraph g = make_ccsd_t1();
  // Find acc tasks by name; each acc_{i+1} depends on acc_i.
  TaskId prev = kNoTask;
  for (TaskId t : g.task_ids()) {
    if (g.task(t).name.rfind("acc", 0) == 0 || g.task(t).name == "residual") {
      if (prev != kNoTask) {
        bool linked = false;
        for (EdgeId e : g.in_edges(t)) linked |= g.edge(e).src == prev;
        EXPECT_TRUE(linked) << g.task(t).name;
      }
      prev = t;
    }
  }
}

// ------------------------------------------------------------ Strassen --
TEST(Strassen, OneLevelHasExpectedStructure) {
  StrassenParams p;
  p.n = 1024;
  p.levels = 1;
  const TaskGraph g = make_strassen(p);
  EXPECT_EQ(g.validate(), "");
  // 10 pre-adds + 7 multiplies + 4 combines + 1 assemble.
  EXPECT_EQ(g.num_tasks(), 22u);
  EXPECT_EQ(g.sinks().size(), 1u);
  EXPECT_EQ(g.sources().size(), 10u);  // the pre-addition tasks
}

TEST(Strassen, RecursionMultipliesTaskCount) {
  StrassenParams p1;
  p1.n = 1024;
  p1.levels = 1;
  StrassenParams p2 = p1;
  p2.levels = 2;
  const std::size_t t1 = make_strassen(p1).num_tasks();
  const std::size_t t2 = make_strassen(p2).num_tasks();
  // Level 2 replaces each of the 7 leaf multiplies with a 22-task sub-DAG.
  EXPECT_EQ(t1, 22u);
  EXPECT_EQ(t2, 22u - 7u + 7u * 22u);
  EXPECT_EQ(make_strassen(p2).validate(), "");
}

TEST(Strassen, MultipliesDominateAdds) {
  StrassenParams p;
  p.n = 4096;
  const TaskGraph g = make_strassen(p);
  double mul_time = 0.0, add_time = 0.0;
  for (TaskId t : g.task_ids()) {
    const double s = g.task(t).profile.serial_time();
    if (g.task(t).name.rfind("mul", 0) == 0)
      mul_time += s;
    else
      add_time += s;
  }
  EXPECT_GT(mul_time, 10.0 * add_time);
}

TEST(Strassen, LargerMatricesScaleBetter) {
  StrassenParams small;
  small.n = 1024;
  StrassenParams big;
  big.n = 4096;
  const TaskGraph gs = make_strassen(small);
  const TaskGraph gb = make_strassen(big);
  auto mul_speedup = [](const TaskGraph& g) {
    for (TaskId t : g.task_ids())
      if (g.task(t).name.rfind("mul", 0) == 0)
        return g.task(t).profile.speedup(64);
    return 0.0;
  };
  EXPECT_GT(mul_speedup(gb), mul_speedup(gs));
}

TEST(Strassen, RejectsBadParameters) {
  StrassenParams p;
  p.n = 1000;  // not a power of two
  EXPECT_THROW(make_strassen(p), std::invalid_argument);
  p.n = 1024;
  p.levels = 0;
  EXPECT_THROW(make_strassen(p), std::invalid_argument);
  p.levels = 20;  // exceeds recursion room for n
  EXPECT_THROW(make_strassen(p), std::invalid_argument);
}

TEST(Strassen, EdgeVolumesMatchBlockSizes) {
  StrassenParams p;
  p.n = 1024;
  const TaskGraph g = make_strassen(p);
  const double quarter = 512.0 * 512.0 * 8.0;
  // Every combine -> assemble edge carries one quadrant.
  const TaskId sink = g.sinks()[0];
  for (EdgeId e : g.in_edges(sink))
    EXPECT_DOUBLE_EQ(g.edge(e).volume_bytes, quarter);
}

}  // namespace
}  // namespace locmps
