/// \file inspect.cpp
/// locmps-inspect: schedule post-mortem CLI.
///
/// Plans and executes one scheme on a workload (a taskgraph v1 file or a
/// seeded synthetic DAG), runs the analytics of obs/analysis.hpp over the
/// realized schedule, and renders the result as a terminal summary and —
/// with --report-out — a self-contained HTML report (obs/report.hpp).
/// With --obs-out the run also streams the PR-1 JSONL decision trace,
/// reads it back, joins it into the analysis (backfill attribution) and
/// cross-checks the analyzer's aggregate local/remote redistribution
/// volumes against the run's comm-model counters and the trace.
///
/// Usage: see usage() below or `locmps-inspect --help`.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "graph/io.hpp"
#include "obs/analysis.hpp"
#include "obs/events.hpp"
#include "obs/report.hpp"
#include "schedulers/registry.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace locmps;

void usage(std::ostream& os) {
  os << "locmps-inspect: post-mortem analytics for one scheduled run\n"
        "\n"
        "Workload (default: one seeded synthetic DAG, Section IV-A):\n"
        "  --graph <file>         read a taskgraph v1 text file instead\n"
        "  --seed <n>             synthetic generator seed (default 20060901)\n"
        "  --ccr <x>              communication/computation ratio (default "
        "0.5)\n"
        "\n"
        "Platform and scheme:\n"
        "  --procs <n>            cluster size (default 32)\n"
        "  --bandwidth-mbps <x>   link bandwidth (default 100, fast "
        "ethernet)\n"
        "  --no-overlap           communication blocks computation\n"
        "  --scheme <name>        scheduler registry name (default "
        "loc-mps)\n"
        "\n"
        "Outputs:\n"
        "  --report-out <file>    write the self-contained HTML report\n"
        "  --obs-out <file>       write the JSONL decision trace, join it\n"
        "                         back and cross-check the locality "
        "totals\n"
        "  --trace <file>         join an existing JSONL trace instead\n"
        "  --title <text>         report title\n"
        "  --quiet                suppress the terminal summary\n"
        "  --help                 this text\n";
}

struct Options {
  std::string graph_file;
  std::uint64_t seed = 20060901;
  double ccr = 0.5;
  std::size_t procs = 32;
  double bandwidth_mbps = 100.0;
  bool overlap = true;
  std::string scheme = "loc-mps";
  std::string report_out;
  std::string obs_out;
  std::string trace_in;
  std::string title;
  bool quiet = false;
};

std::optional<Options> parse(int argc, char** argv) {
  Options o;
  auto need = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "locmps-inspect: " << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = nullptr;
    if (a == "--help" || a == "-h") {
      usage(std::cout);
      std::exit(0);
    } else if (a == "--graph") {
      if ((v = need(i, "--graph")) == nullptr) return std::nullopt;
      o.graph_file = v;
    } else if (a == "--seed") {
      if ((v = need(i, "--seed")) == nullptr) return std::nullopt;
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--ccr") {
      if ((v = need(i, "--ccr")) == nullptr) return std::nullopt;
      o.ccr = std::strtod(v, nullptr);
    } else if (a == "--procs") {
      if ((v = need(i, "--procs")) == nullptr) return std::nullopt;
      o.procs = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (a == "--bandwidth-mbps") {
      if ((v = need(i, "--bandwidth-mbps")) == nullptr) return std::nullopt;
      o.bandwidth_mbps = std::strtod(v, nullptr);
    } else if (a == "--no-overlap") {
      o.overlap = false;
    } else if (a == "--scheme") {
      if ((v = need(i, "--scheme")) == nullptr) return std::nullopt;
      o.scheme = v;
    } else if (a == "--report-out") {
      if ((v = need(i, "--report-out")) == nullptr) return std::nullopt;
      o.report_out = v;
    } else if (a == "--obs-out") {
      if ((v = need(i, "--obs-out")) == nullptr) return std::nullopt;
      o.obs_out = v;
    } else if (a == "--trace") {
      if ((v = need(i, "--trace")) == nullptr) return std::nullopt;
      o.trace_in = v;
    } else if (a == "--title") {
      if ((v = need(i, "--title")) == nullptr) return std::nullopt;
      o.title = v;
    } else if (a == "--quiet") {
      o.quiet = true;
    } else {
      std::cerr << "locmps-inspect: unknown argument '" << a
                << "' (--help for usage)\n";
      return std::nullopt;
    }
  }
  if (o.procs == 0) {
    std::cerr << "locmps-inspect: --procs must be positive\n";
    return std::nullopt;
  }
  return o;
}

TaskGraph load_workload(const Options& o) {
  if (!o.graph_file.empty()) {
    std::ifstream in(o.graph_file);
    if (!in)
      throw std::runtime_error("cannot open graph file: " + o.graph_file);
    return read_text(in);
  }
  SyntheticParams p;
  p.ccr = o.ccr;
  p.max_procs = std::max<std::size_t>(o.procs, 32);
  p.bandwidth_Bps = o.bandwidth_mbps * 1e6 / 8.0;
  Rng rng(o.seed);
  return make_synthetic_dag(p, rng);
}

/// Joins \p trace_path into \p run's analysis and cross-checks the
/// analyzer's aggregate volumes against the trace and the run counters.
/// Returns false (after printing the discrepancy) when they disagree.
bool join_and_reconcile(SchemeRun& run, const std::string& trace_path,
                        bool quiet) {
  std::ifstream in(trace_path);
  if (!in) {
    std::cerr << "locmps-inspect: cannot read trace " << trace_path << "\n";
    return false;
  }
  const auto records = obs::read_trace(in);
  const auto digest = obs::summarize_trace(records, run.analysis.num_tasks);
  obs::join_trace(run.analysis, digest);

  const double analyzer = run.analysis.locality.remote_bytes;
  const double counter = run.counters.counter("sim.remote_bytes");
  const double traced = digest.transfer_bytes;
  const double scale = std::max({1.0, analyzer, counter, traced});
  const bool ok = std::abs(analyzer - counter) <= 1e-9 * scale &&
                  std::abs(analyzer - traced) <= 1e-9 * scale;
  if (!ok) {
    std::cerr << "locmps-inspect: remote-volume mismatch: analyzer "
              << analyzer << " B, counter sim.remote_bytes " << counter
              << " B, trace " << traced << " B\n";
  } else if (!quiet) {
    std::cout << "reconciled      analyzer remote volume == sim counters == "
                 "trace ("
              << fmt(analyzer / 1e6, 2) << " MB over "
              << digest.transfer_events << " transfers)\n";
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse(argc, argv);
  if (!opts) return 2;
  const Options& o = *opts;

  try {
    const TaskGraph g = load_workload(o);
    const Cluster cluster(o.procs, o.bandwidth_mbps * 1e6 / 8.0, o.overlap);

    SchemeRun run;
    if (!o.obs_out.empty()) {
      std::ofstream jsonl(o.obs_out);
      if (!jsonl) {
        std::cerr << "locmps-inspect: cannot open " << o.obs_out << "\n";
        return 2;
      }
      obs::JsonlSink sink(jsonl);
      run = evaluate_scheme(o.scheme, g, cluster, {}, &sink);
    } else {
      run = evaluate_scheme(o.scheme, g, cluster, {});
    }

    bool reconciled = true;
    if (!o.obs_out.empty())
      reconciled = join_and_reconcile(run, o.obs_out, o.quiet);
    else if (!o.trace_in.empty())
      reconciled = join_and_reconcile(run, o.trace_in, o.quiet);

    if (!o.quiet) {
      std::cout << "scheme          " << o.scheme << " on " << o.procs
                << " procs (" << fmt(o.bandwidth_mbps, 0) << " Mbps, "
                << (o.overlap ? "overlap" : "no overlap") << "), "
                << g.num_tasks() << "-task workload\n";
      std::cout << obs::text_report(run.analysis);
    }

    if (!o.report_out.empty()) {
      obs::ReportOptions ropt;
      ropt.title = !o.title.empty()
                       ? o.title
                       : o.scheme + " schedule on " +
                             std::to_string(o.procs) + " processors";
      std::ostringstream sub;
      sub << g.num_tasks() << " tasks, " << g.num_edges() << " edges, "
          << fmt(o.bandwidth_mbps, 0) << " Mbps "
          << (o.overlap ? "overlap" : "no-overlap") << " platform";
      ropt.subtitle = sub.str();
      std::ofstream html(o.report_out);
      if (!html) {
        std::cerr << "locmps-inspect: cannot open " << o.report_out << "\n";
        return 2;
      }
      obs::write_html_report(html, g, run.schedule, run.analysis, ropt);
      if (!o.quiet)
        std::cout << "report          " << o.report_out << "\n";
    }
    return reconciled ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "locmps-inspect: " << e.what() << "\n";
    return 2;
  }
}
