/// \file inspect.cpp
/// locmps-inspect: schedule post-mortem CLI.
///
/// Plans and executes one scheme on a workload (a taskgraph v1 file or a
/// seeded synthetic DAG), runs the analytics of obs/analysis.hpp over the
/// realized schedule, and renders the result as a terminal summary and —
/// with --report-out — a self-contained HTML report (obs/report.hpp).
/// With --obs-out the run also streams the PR-1 JSONL decision trace,
/// reads it back, joins it into the analysis (backfill attribution) and
/// cross-checks the analyzer's aggregate local/remote redistribution
/// volumes against the run's comm-model counters and the trace.
/// With --fault-rate the run executes under injected fail-stop processor
/// failures (src/faults/), recovers with the selected policy, and the
/// cross-check additionally reconciles the "fault.*"/"recovery.*" counters
/// against the decision trace and the RecoveryResult.
///
/// Usage: see usage() below or `locmps-inspect --help`.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "faults/recovery.hpp"
#include "faults/robustness.hpp"
#include "graph/io.hpp"
#include "network/comm_model.hpp"
#include "obs/analysis.hpp"
#include "obs/events.hpp"
#include "obs/flame.hpp"
#include "obs/log.hpp"
#include "obs/profile.hpp"
#include "obs/provenance.hpp"
#include "obs/report.hpp"
#include "obs/rundiff.hpp"
#include "schedulers/loc_mps.hpp"
#include "schedulers/registry.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

// Baked in at configure time by tools/CMakeLists.txt (git describe).
#ifndef LOCMPS_GIT_DESCRIBE
#define LOCMPS_GIT_DESCRIBE "unknown"
#endif

namespace {

using namespace locmps;

void usage(std::ostream& os) {
  os << "locmps-inspect: post-mortem analytics for one scheduled run\n"
        "\n"
        "Workload (default: one seeded synthetic DAG, Section IV-A):\n"
        "  --graph <file>         read a taskgraph v1 text file instead\n"
        "  --seed <n>             synthetic generator seed (default 20060901)\n"
        "  --ccr <x>              communication/computation ratio (default "
        "0.5)\n"
        "\n"
        "Platform and scheme:\n"
        "  --procs <n>            cluster size (default 32)\n"
        "  --bandwidth-mbps <x>   link bandwidth (default 100, fast "
        "ethernet)\n"
        "  --no-overlap           communication blocks computation\n"
        "  --scheme <name>        scheduler registry name (default "
        "loc-mps)\n"
        "  --threads <n>          speculative LoCBS probe threads (0 = one\n"
        "                         per hardware thread; default 1). Any\n"
        "                         setting yields the identical schedule —\n"
        "                         see docs/parallelism.md\n"
        "\n"
        "Fault injection (uses the loc-mps planner, ignoring --scheme):\n"
        "  --fault-rate <x>       fraction of processors that fail-stop\n"
        "                         (default 0: fault-free)\n"
        "  --fault-seed <n>       fault-plan seed (default 7)\n"
        "  --fault-repair         failed processors come back after a "
        "delay\n"
        "  --fault-policy <p>     recovery policy: replan (default) or "
        "retry\n"
        "\n"
        "Performance faults (docs/fault_tolerance.md):\n"
        "  --robustness <N>       Monte-Carlo robustness mode: replay the\n"
        "                         planned schedule under N seeded\n"
        "                         perturbation ensembles and report the\n"
        "                         makespan distribution\n"
        "  --straggler-rate <k>   straggler mode: run under a seeded\n"
        "                         processor slowdown with deadline-based\n"
        "                         detection at k x the modeled time\n"
        "                         (k > 1), mitigate, and reconcile the\n"
        "                         mitigation accounting\n"
        "  --mitigation <m>       straggler mitigation: speculate "
        "(default)\n"
        "                         or replan\n"
        "  --slow-factor <x>      injected slowdown magnitude (default "
        "4)\n"
        "  --slack <f>            LoCBS slack factor >= 1: inflate\n"
        "                         reservations during placement (default "
        "1)\n"
        "  --gate-ratio <r>       straggler mode: exit 1 unless the\n"
        "                         recovered makespan is <= r x the clean\n"
        "                         planned makespan\n"
        "\n"
        "Provenance and run diffing (docs/observability.md):\n"
        "  --explain <task>       print the task's placement decision\n"
        "                         record (repeatable; needs --obs-out or\n"
        "                         --trace)\n"
        "  --why-critical         walk the critical path printing each\n"
        "                         task's decision record and start blame\n"
        "                         (needs --obs-out or --trace)\n"
        "  --diff <A> <B>         diff two decision traces of this\n"
        "                         workload and attribute the makespan\n"
        "                         delta to ranked root-cause decisions\n"
        "                         (no scheduling run)\n"
        "  --diff-json <file>     with --diff: also write the attribution\n"
        "                         artifact as JSON\n"
        "  --perturb-task <t>     seeded divergence: task t adopts its\n"
        "                         runner-up slot in the final LoCBS pass\n"
        "                         (LoCBS-backed schemes only)\n"
        "\n"
        "Outputs:\n"
        "  --report-out <file>    write the self-contained HTML report\n"
        "  --obs-out <file>       write the JSONL decision trace, join it\n"
        "                         back and cross-check the locality "
        "totals\n"
        "  --trace <file>         join an existing JSONL trace instead\n"
        "  --profile              print the planner self-profile span "
        "tree\n"
        "                         and reconcile its harness.plan total\n"
        "                         against the measured planning time "
        "(2%)\n"
        "  --flame-out <file>     write collapsed-stack flamegraph text\n"
        "                         (flamegraph.pl / speedscope input)\n"
        "  --flame-weight <w>     flamegraph weight: wall (default), "
        "cpu\n"
        "                         or alloc\n"
        "  --log-level <l>        diagnostics level: error, warn, info\n"
        "                         (default) or debug; also LOCMPS_LOG "
        "env\n"
        "  --title <text>         report title\n"
        "  --quiet                suppress the terminal summary\n"
        "  --version              print the build's git describe and exit\n"
        "  --help                 this text\n";
}

struct Options {
  std::string graph_file;
  std::uint64_t seed = 20060901;
  double ccr = 0.5;
  std::size_t procs = 32;
  double bandwidth_mbps = 100.0;
  bool overlap = true;
  std::string scheme = "loc-mps";
  std::size_t threads = 1;
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 7;
  bool fault_repair = false;
  std::string fault_policy = "replan";
  std::string report_out;
  std::string obs_out;
  std::string trace_in;
  bool profile = false;
  std::string flame_out;
  obs::FlameWeight flame_weight = obs::FlameWeight::kWallMicros;
  std::string title;
  bool quiet = false;
  std::vector<TaskId> explain;
  bool why_critical = false;
  std::string diff_a;
  std::string diff_b;
  std::string diff_json;
  TaskId perturb_task = kNoTask;
  std::size_t robustness = 0;     // Monte-Carlo samples; 0 = mode off
  double straggler_rate = 0.0;    // detection threshold k; 0 = mode off
  std::string mitigation = "speculate";
  double slow_factor = 4.0;
  double slack = 1.0;
  double gate_ratio = 0.0;        // 0 = no gate
};

/// Shorthand for this tool's error diagnostics (obs/log.hpp).
obs::LogLine err() { return obs::log(obs::LogLevel::kError, "inspect"); }

std::optional<Options> parse(int argc, char** argv) {
  Options o;
  auto need = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      err() << flag << " needs a value";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = nullptr;
    if (a == "--help" || a == "-h") {
      usage(std::cout);
      std::exit(0);
    } else if (a == "--graph") {
      if ((v = need(i, "--graph")) == nullptr) return std::nullopt;
      o.graph_file = v;
    } else if (a == "--seed") {
      if ((v = need(i, "--seed")) == nullptr) return std::nullopt;
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--ccr") {
      if ((v = need(i, "--ccr")) == nullptr) return std::nullopt;
      o.ccr = std::strtod(v, nullptr);
    } else if (a == "--procs") {
      if ((v = need(i, "--procs")) == nullptr) return std::nullopt;
      o.procs = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (a == "--bandwidth-mbps") {
      if ((v = need(i, "--bandwidth-mbps")) == nullptr) return std::nullopt;
      o.bandwidth_mbps = std::strtod(v, nullptr);
    } else if (a == "--no-overlap") {
      o.overlap = false;
    } else if (a == "--scheme") {
      if ((v = need(i, "--scheme")) == nullptr) return std::nullopt;
      o.scheme = v;
    } else if (a == "--threads") {
      if ((v = need(i, "--threads")) == nullptr) return std::nullopt;
      o.threads = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (a == "--fault-rate") {
      if ((v = need(i, "--fault-rate")) == nullptr) return std::nullopt;
      o.fault_rate = std::strtod(v, nullptr);
    } else if (a == "--fault-seed") {
      if ((v = need(i, "--fault-seed")) == nullptr) return std::nullopt;
      o.fault_seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--fault-repair") {
      o.fault_repair = true;
    } else if (a == "--fault-policy") {
      if ((v = need(i, "--fault-policy")) == nullptr) return std::nullopt;
      o.fault_policy = v;
    } else if (a == "--report-out") {
      if ((v = need(i, "--report-out")) == nullptr) return std::nullopt;
      o.report_out = v;
    } else if (a == "--obs-out") {
      if ((v = need(i, "--obs-out")) == nullptr) return std::nullopt;
      o.obs_out = v;
    } else if (a == "--trace") {
      if ((v = need(i, "--trace")) == nullptr) return std::nullopt;
      o.trace_in = v;
    } else if (a == "--profile") {
      o.profile = true;
    } else if (a == "--flame-out") {
      if ((v = need(i, "--flame-out")) == nullptr) return std::nullopt;
      o.flame_out = v;
    } else if (a == "--flame-weight") {
      if ((v = need(i, "--flame-weight")) == nullptr) return std::nullopt;
      const std::string w = v;
      if (w == "wall") {
        o.flame_weight = obs::FlameWeight::kWallMicros;
      } else if (w == "cpu") {
        o.flame_weight = obs::FlameWeight::kCpuMicros;
      } else if (w == "alloc") {
        o.flame_weight = obs::FlameWeight::kAllocBytes;
      } else {
        err() << "--flame-weight must be 'wall', 'cpu' or 'alloc'";
        return std::nullopt;
      }
    } else if (a == "--log-level") {
      if ((v = need(i, "--log-level")) == nullptr) return std::nullopt;
      obs::LogLevel level = obs::LogLevel::kInfo;
      if (!obs::parse_log_level(v, level)) {
        err() << "--log-level must be error, warn, info or debug";
        return std::nullopt;
      }
      obs::set_log_level(level);
    } else if (a == "--title") {
      if ((v = need(i, "--title")) == nullptr) return std::nullopt;
      o.title = v;
    } else if (a == "--quiet") {
      o.quiet = true;
    } else if (a == "--explain") {
      if ((v = need(i, "--explain")) == nullptr) return std::nullopt;
      o.explain.push_back(
          static_cast<TaskId>(std::strtoull(v, nullptr, 10)));
    } else if (a == "--why-critical") {
      o.why_critical = true;
    } else if (a == "--diff") {
      if ((v = need(i, "--diff")) == nullptr) return std::nullopt;
      o.diff_a = v;
      if ((v = need(i, "--diff")) == nullptr) return std::nullopt;
      o.diff_b = v;
    } else if (a == "--diff-json") {
      if ((v = need(i, "--diff-json")) == nullptr) return std::nullopt;
      o.diff_json = v;
    } else if (a == "--perturb-task") {
      if ((v = need(i, "--perturb-task")) == nullptr) return std::nullopt;
      o.perturb_task =
          static_cast<TaskId>(std::strtoull(v, nullptr, 10));
    } else if (a == "--robustness") {
      if ((v = need(i, "--robustness")) == nullptr) return std::nullopt;
      o.robustness = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (a == "--straggler-rate") {
      if ((v = need(i, "--straggler-rate")) == nullptr) return std::nullopt;
      o.straggler_rate = std::strtod(v, nullptr);
    } else if (a == "--mitigation") {
      if ((v = need(i, "--mitigation")) == nullptr) return std::nullopt;
      o.mitigation = v;
    } else if (a == "--slow-factor") {
      if ((v = need(i, "--slow-factor")) == nullptr) return std::nullopt;
      o.slow_factor = std::strtod(v, nullptr);
    } else if (a == "--slack") {
      if ((v = need(i, "--slack")) == nullptr) return std::nullopt;
      o.slack = std::strtod(v, nullptr);
    } else if (a == "--gate-ratio") {
      if ((v = need(i, "--gate-ratio")) == nullptr) return std::nullopt;
      o.gate_ratio = std::strtod(v, nullptr);
    } else if (a == "--version") {
      std::cout << "locmps-inspect " << LOCMPS_GIT_DESCRIBE << "\n";
      std::exit(0);
    } else {
      err() << "unknown argument '" << a << "' (--help for usage)";
      usage(std::cerr);
      return std::nullopt;
    }
  }
  if (o.procs == 0) {
    err() << "--procs must be positive";
    return std::nullopt;
  }
  if (o.fault_rate < 0.0 || o.fault_rate > 1.0) {
    err() << "--fault-rate must be in [0, 1]";
    return std::nullopt;
  }
  if (o.fault_policy != "replan" && o.fault_policy != "retry") {
    err() << "--fault-policy must be 'replan' or 'retry'";
    return std::nullopt;
  }
  // 0.0 is the exact flag-unset sentinel. LINT-ALLOW(float-eq)
  if (o.straggler_rate != 0.0 && o.straggler_rate <= 1.0) {
    err() << "--straggler-rate must be > 1 (detection fires at k x the "
             "modeled time)";
    return std::nullopt;
  }
  if (o.mitigation != "speculate" && o.mitigation != "replan") {
    err() << "--mitigation must be 'speculate' or 'replan'";
    return std::nullopt;
  }
  if (o.slow_factor < 1.0) {
    err() << "--slow-factor must be >= 1";
    return std::nullopt;
  }
  if (o.slack < 1.0) {
    err() << "--slack must be >= 1";
    return std::nullopt;
  }
  if (o.gate_ratio < 0.0) {
    err() << "--gate-ratio must be positive";
    return std::nullopt;
  }
  // 0.0 is the exact flag-unset sentinel. LINT-ALLOW(float-eq)
  if (o.gate_ratio > 0.0 && o.straggler_rate == 0.0) {
    err() << "--gate-ratio needs --straggler-rate";
    return std::nullopt;
  }
  if (o.robustness > 0 && o.straggler_rate > 0.0) {
    err() << "--robustness and --straggler-rate are separate modes";
    return std::nullopt;
  }
  if ((!o.explain.empty() || o.why_critical) && o.obs_out.empty() &&
      o.trace_in.empty()) {
    err() << "--explain/--why-critical need a decision trace: add "
             "--obs-out <file> or --trace <file>";
    return std::nullopt;
  }
  if (!o.diff_json.empty() && o.diff_a.empty()) {
    err() << "--diff-json needs --diff <A> <B>";
    return std::nullopt;
  }
  return o;
}

TaskGraph load_workload(const Options& o) {
  if (!o.graph_file.empty()) {
    std::ifstream in(o.graph_file);
    if (!in)
      throw std::runtime_error("cannot open graph file: " + o.graph_file);
    return read_text(in);
  }
  SyntheticParams p;
  p.ccr = o.ccr;
  p.max_procs = std::max<std::size_t>(o.procs, 32);
  p.bandwidth_Bps = o.bandwidth_mbps * 1e6 / 8.0;
  Rng rng(o.seed);
  return make_synthetic_dag(p, rng);
}

/// `--diff A B`: aligns two decision traces of this workload's graph,
/// classifies every divergence and attributes the makespan delta to
/// ranked root-cause decisions (obs/rundiff.hpp). No scheduling run.
/// Returns the process exit code.
int run_diff_mode(const Options& o, const TaskGraph& g) {
  auto load = [&](const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot read trace " + path);
    return obs::run_view(obs::read_trace(in), g.num_tasks());
  };
  const obs::RunView a = load(o.diff_a);
  const obs::RunView b = load(o.diff_b);
  const obs::RunDiff d = obs::diff_runs(g, a, b);
  obs::print_diff(std::cout, g, a, b, d);
  if (!o.diff_json.empty()) {
    std::ofstream out(o.diff_json);
    if (!out) {
      err() << "cannot open " << o.diff_json;
      return 2;
    }
    obs::write_diff_json(out, g, a, b, d);
    if (!o.quiet)
      std::cout << "attribution     " << o.diff_json << "\n";
  }
  return 0;
}

/// Joins \p trace_path into \p run's analysis and cross-checks the
/// analyzer's aggregate volumes against the trace and the run counters.
/// Returns false (after printing the discrepancy) when they disagree.
bool join_and_reconcile(SchemeRun& run, const std::string& trace_path,
                        bool quiet) {
  std::ifstream in(trace_path);
  if (!in) {
    err() << "cannot read trace " << trace_path;
    return false;
  }
  const auto records = obs::read_trace(in);
  const auto digest = obs::summarize_trace(records, run.analysis.num_tasks);
  obs::join_trace(run.analysis, digest);

  const double analyzer = run.analysis.locality.remote_bytes;
  const double counter = run.counters.counter("sim.remote_bytes");
  const double traced = digest.transfer_bytes;
  const double scale = std::max({1.0, analyzer, counter, traced});
  const bool ok = std::abs(analyzer - counter) <= 1e-9 * scale &&
                  std::abs(analyzer - traced) <= 1e-9 * scale;
  if (!ok) {
    err() << "remote-volume mismatch: analyzer " << analyzer
          << " B, counter sim.remote_bytes " << counter << " B, trace "
          << traced << " B";
  } else if (!quiet) {
    std::cout << "reconciled      analyzer remote volume == sim counters == "
                 "trace ("
              << fmt(analyzer / 1e6, 2) << " MB over "
              << digest.transfer_events << " transfers)\n";
  }
  return ok;
}

/// `--robustness N`: plans once (honoring --scheme, --threads and
/// --slack), then replays the schedule through N seeded perturbation
/// ensembles and reports the makespan distribution. With --obs-out the
/// "robust.*" accounting is reconciled across its three books: the
/// metrics counters, the trace events and the RobustnessReport. Returns
/// the process exit code.
int run_robustness_mode(const Options& o, const TaskGraph& g,
                        const Cluster& cluster) {
  const CommModel comm(cluster);

  obs::MetricsRegistry met;
  std::ofstream jsonl;
  std::optional<obs::JsonlSink> sink;
  obs::ObsContext ctx{&met, nullptr};
  if (!o.obs_out.empty()) {
    jsonl.open(o.obs_out);
    if (!jsonl) {
      err() << "cannot open " << o.obs_out;
      return 2;
    }
    sink.emplace(jsonl);
    ctx.sink = &*sink;
  }

  SchedulerOptions sched_opt;
  sched_opt.threads = o.threads;
  sched_opt.slack_factor = o.slack;
  const SchedulerPtr sched = make_scheduler(o.scheme, sched_opt);
  const SchedulerResult plan = sched->schedule(g, cluster);

  RobustnessOptions ropt;
  ropt.samples = o.robustness;
  ropt.obs = &ctx;
  // Scale the perturbation family to the realized (unperturbed) replay,
  // not the planner's estimate: under --slack the estimate is inflated by
  // design, and scaling from it would expose slacked schedules to longer
  // perturbation windows than tight ones — an unfair comparison.
  const double span = std::max(
      1e-6, simulate_execution(g, plan.schedule, comm, {}).makespan);
  ropt.perturb.seed = o.fault_seed;
  ropt.perturb.slow_factor = o.slow_factor;
  ropt.perturb.horizon_s = span;
  ropt.perturb.slow_duration_s = 0.5 * span;
  ropt.perturb.link_windows = 2;
  ropt.perturb.link_duration_s = 0.2 * span;
  const RobustnessReport rep = score_robustness(g, plan.schedule, comm, ropt);
  if (sink && sink->dropped() > 0)
    met.add("obs.trace.dropped", static_cast<double>(sink->dropped()));
  sink.reset();
  jsonl.close();

  if (!o.quiet)
    std::cout << "robustness mode " << o.scheme << ", slack "
              << fmt(o.slack, 2) << ", " << o.robustness
              << " perturbed sample(s), slow-factor "
              << fmt(o.slow_factor, 2) << "\n";

  obs::ScheduleAnalysis a = obs::analyze_schedule(g, plan.schedule, comm);
  const obs::MetricsSnapshot snap = met.snapshot();
  obs::join_event_health(a, snap);
  join_robustness(a, rep);

  bool ok = true;
  if (!o.obs_out.empty()) {
    std::ifstream in(o.obs_out);
    if (!in) {
      err() << "cannot read trace " << o.obs_out;
      return 1;
    }
    const auto records = obs::read_trace(in);
    const auto digest = obs::summarize_trace(records, a.num_tasks);
    // Three books: the counters, the trace and the report must agree on
    // the ensemble size, and counters/report on the distribution summary.
    auto book = [&](const char* what, double x, double y, double z) {
      const double scale =
          std::max({1.0, std::fabs(x), std::fabs(y), std::fabs(z)});
      if (std::fabs(x - y) > 1e-9 * scale ||
          std::fabs(x - z) > 1e-9 * scale) {
        err() << what << " mismatch: counter " << x << ", trace " << y
              << ", report " << z;
        ok = false;
      }
    };
    book("robust.samples", snap.counter("robust.samples"),
         static_cast<double>(digest.robust_samples),
         static_cast<double>(rep.samples));
    book("robust.p95", snap.counter("robust.p95"), rep.p95, rep.p95);
    book("robust.worst", snap.counter("robust.worst"), rep.worst,
         rep.worst);
    if (ok && !o.quiet)
      std::cout << "reconciled      robust counters == trace == report ("
                << rep.samples << " samples)\n";
  }

  if (!o.quiet) std::cout << obs::text_report(a);

  if (!o.report_out.empty()) {
    obs::ReportOptions ro;
    ro.title = !o.title.empty() ? o.title
                                : o.scheme + " robustness on " +
                                      std::to_string(o.procs) +
                                      " processors";
    std::ostringstream sub;
    sub << g.num_tasks() << " tasks, slack " << fmt(o.slack, 2) << ", "
        << rep.samples << " perturbed samples, p95 "
        << fmt(rep.p95_over_nominal, 3) << "x nominal";
    ro.subtitle = sub.str();
    std::ofstream html(o.report_out);
    if (!html) {
      err() << "cannot open " << o.report_out;
      return 2;
    }
    obs::write_html_report(html, g, plan.schedule, a, ro);
    if (!o.quiet) std::cout << "report          " << o.report_out << "\n";
  }
  return ok ? 0 : 1;
}

/// `--straggler-rate k`: executes the workload under a seeded processor
/// slowdown (no fail-stop failures), detects tasks running past k x their
/// modeled time, mitigates them with the selected policy, and reconciles
/// the "perturb.*"/"mitigation.*" accounting. With --gate-ratio the exit
/// code enforces recovered makespan <= ratio x the clean plan. Returns
/// the process exit code.
int run_straggler_mode(const Options& o, const TaskGraph& g,
                       const Cluster& cluster) {
  const CommModel comm(cluster);

  RecoveryOptions ro;
  ro.planner.locbs.slack_factor = o.slack;
  ro.perturb = nullptr;
  ro.straggler_threshold = o.straggler_rate;
  ro.straggler_mitigation = o.mitigation == "replan"
                                ? StragglerMitigation::kReplan
                                : StragglerMitigation::kSpeculate;

  // The slowdown windows scale from the clean planned makespan so they
  // overlap the busy chart.
  const double base =
      LocMPSScheduler(ro.planner).schedule(g, cluster).estimated_makespan;
  PerturbationParams pp;
  pp.seed = o.fault_seed;
  pp.slow_factor = o.slow_factor;
  pp.horizon_s = std::max(1e-6, 0.6 * base);
  pp.slow_duration_s = std::max(1e-6, 0.5 * base);
  pp.link_windows = 0;
  const PerturbationPlan plan =
      make_perturbation_plan(cluster.processors, g.num_tasks(), pp);
  const FaultPlan no_faults(cluster.processors, {});

  obs::MetricsRegistry met;
  std::ofstream jsonl;
  std::optional<obs::JsonlSink> sink;
  obs::ObsContext ctx{&met, nullptr};
  if (!o.obs_out.empty()) {
    jsonl.open(o.obs_out);
    if (!jsonl) {
      err() << "cannot open " << o.obs_out;
      return 2;
    }
    sink.emplace(jsonl);
    ctx.sink = &*sink;
  }
  ro.perturb = &plan;
  ro.obs = &ctx;
  const RecoveryResult res = run_with_faults(g, cluster, no_faults, ro);
  if (sink && sink->dropped() > 0)
    met.add("obs.trace.dropped", static_cast<double>(sink->dropped()));
  sink.reset();
  jsonl.close();

  if (!o.quiet)
    std::cout << "straggler mode  " << plan.slowdowns().size()
              << " slowdown window(s) at " << fmt(o.slow_factor, 2)
              << "x, detect at " << fmt(o.straggler_rate, 2)
              << "x modeled, mitigation " << o.mitigation << ", slack "
              << fmt(o.slack, 2) << "\n";
  if (!res.completed) {
    err() << "recovery gave up after " << res.rounds
          << " round(s): " << res.error;
    return 1;
  }
  const std::string diag = res.executed.validate(g, comm);
  if (!diag.empty()) {
    err() << "recovered schedule invalid: " << diag;
    return 1;
  }

  obs::ScheduleAnalysis a = obs::analyze_schedule(g, res.executed, comm);
  const obs::MetricsSnapshot snap = met.snapshot();
  obs::join_backfill_stats(a, snap);
  obs::join_perturb_stats(a, snap);
  obs::join_mitigation_stats(a, snap);
  obs::join_event_health(a, snap);
  join_perturbation(a, plan);

  bool ok = true;
  if (!o.obs_out.empty()) {
    std::ifstream in(o.obs_out);
    if (!in) {
      err() << "cannot read trace " << o.obs_out;
      return 1;
    }
    const auto records = obs::read_trace(in);
    const auto digest = obs::summarize_trace(records, a.num_tasks);
    obs::join_trace(a, digest);
    auto book = [&](const char* what, double counter, double traced,
                    double result) {
      const double scale = std::max(
          {1.0, std::fabs(counter), std::fabs(traced), std::fabs(result)});
      if (std::fabs(counter - traced) > 1e-9 * scale ||
          std::fabs(counter - result) > 1e-9 * scale) {
        err() << what << " mismatch: counter " << counter << ", trace "
              << traced << ", result " << result;
        ok = false;
      }
    };
    // Mitigation accounting reconciles across all three books; the
    // perturbation exposure across two (the final clean round is the only
    // obs-attached simulation, and RecoveryResult does not re-expose it).
    book("mitigation.stragglers", snap.counter("mitigation.stragglers"),
         static_cast<double>(digest.mitigation_stragglers),
         static_cast<double>(res.stragglers));
    book("mitigation.speculations", snap.counter("mitigation.speculations"),
         static_cast<double>(digest.mitigation_speculations),
         static_cast<double>(res.speculations));
    book("mitigation.replans", snap.counter("mitigation.replans"),
         static_cast<double>(digest.mitigation_replans),
         static_cast<double>(res.straggler_replans));
    book("mitigation.wasted_seconds",
         snap.counter("mitigation.wasted_seconds"),
         digest.mitigation_wasted_s, res.mitigation_wasted_seconds);
    book("perturb.slowed_tasks", snap.counter("perturb.slowed_tasks"),
         static_cast<double>(digest.perturb_slow_events),
         snap.counter("perturb.slowed_tasks"));
    book("perturb.stretch_seconds", snap.counter("perturb.stretch_seconds"),
         digest.perturb_stretch_s, snap.counter("perturb.stretch_seconds"));
    if (ok && !o.quiet)
      std::cout << "reconciled      mitigation counters == trace == result; "
                   "perturb counters == trace\n";
  }

  if (!o.quiet) {
    std::cout << "makespan        clean plan " << fmt(res.planned_makespan, 3)
              << " s, recovered " << fmt(res.makespan, 3) << " s ("
              << fmt(res.makespan / std::max(1e-9, res.planned_makespan), 3)
              << "x)\n";
    std::cout << obs::text_report(a);
  }

  if (!o.report_out.empty()) {
    obs::ReportOptions ropt;
    ropt.title = !o.title.empty() ? o.title
                                  : "loc-mps under stragglers on " +
                                        std::to_string(o.procs) +
                                        " processors";
    std::ostringstream sub;
    sub << g.num_tasks() << " tasks, " << fmt(o.slow_factor, 2)
        << "x slowdown, detect at " << fmt(o.straggler_rate, 2)
        << "x, mitigation " << o.mitigation << ", realized makespan "
        << fmt(res.makespan, 3) << " s (planned "
        << fmt(res.planned_makespan, 3) << " s)";
    ropt.subtitle = sub.str();
    std::ofstream html(o.report_out);
    if (!html) {
      err() << "cannot open " << o.report_out;
      return 2;
    }
    obs::write_html_report(html, g, res.executed, a, ropt);
    if (!o.quiet) std::cout << "report          " << o.report_out << "\n";
  }

  if (o.gate_ratio > 0.0) {
    if (res.stragglers == 0) {
      err() << "gate failed: no straggler was detected — the gate proves "
               "nothing";
      return 1;
    }
    if (res.makespan > o.gate_ratio * res.planned_makespan) {
      err() << "gate failed: recovered makespan " << fmt(res.makespan, 3)
            << " s exceeds " << fmt(o.gate_ratio, 2) << " x clean plan "
            << fmt(res.planned_makespan, 3) << " s";
      return 1;
    }
  }
  return ok ? 0 : 1;
}

/// Executes the workload under injected fail-stop failures, recovers with
/// the selected policy, and reconciles the fault/recovery accounting
/// across its three independent books: the metrics counters, the decision
/// trace, and the RecoveryResult. Returns the process exit code.
int run_fault_mode(const Options& o, const TaskGraph& g,
                   const Cluster& cluster) {
  const CommModel comm(cluster);

  // Failures land inside the busy part of the schedule: the horizon is a
  // fraction of the fault-free planned makespan.
  const LocMPSScheduler probe;
  const double base = probe.schedule(g, cluster).estimated_makespan;
  FaultPlanParams fpp;
  fpp.fail_fraction = o.fault_rate;
  fpp.horizon_s = std::max(1e-6, 0.6 * base);
  fpp.repairs = o.fault_repair;
  fpp.repair_delay_s = std::max(1e-6, 0.25 * base);
  fpp.seed = o.fault_seed;
  const FaultPlan plan = make_fault_plan(cluster.processors, fpp);

  obs::MetricsRegistry met;
  std::ofstream jsonl;
  std::optional<obs::JsonlSink> sink;
  obs::ObsContext ctx{&met, nullptr};
  if (!o.obs_out.empty()) {
    jsonl.open(o.obs_out);
    if (!jsonl) {
      err() << "cannot open " << o.obs_out;
      return 2;
    }
    sink.emplace(jsonl);
    ctx.sink = &*sink;
  }

  RecoveryOptions ro;
  ro.policy = o.fault_policy == "retry" ? RecoveryPolicy::kRetryInPlace
                                        : RecoveryPolicy::kDegradedReplan;
  ro.obs = &ctx;
  const RecoveryResult res = run_with_faults(g, cluster, plan, ro);
  if (sink && sink->dropped() > 0)
    met.add("obs.trace.dropped", static_cast<double>(sink->dropped()));
  sink.reset();
  jsonl.close();

  if (!o.quiet)
    std::cout << "fault mode      rate " << fmt(o.fault_rate, 2) << ", "
              << plan.events().size() << " failure(s) injected, policy "
              << o.fault_policy
              << (o.fault_repair ? ", repairs on" : ", no repairs") << "\n";
  if (!res.completed) {
    err() << "recovery gave up after " << res.rounds
          << " round(s): " << res.error;
    return 1;
  }
  const std::string diag = res.executed.validate(g, comm);
  if (!diag.empty()) {
    err() << "recovered schedule invalid: " << diag;
    return 1;
  }

  obs::ScheduleAnalysis a = obs::analyze_schedule(g, res.executed, comm);
  const obs::MetricsSnapshot snap = met.snapshot();
  obs::join_backfill_stats(a, snap);
  obs::join_fault_stats(a, snap);
  obs::join_event_health(a, snap);
  join_fault_plan(a, plan);

  bool ok = true;
  auto book = [&](const char* what, double counter, double traced,
                  double result) {
    const double scale = std::max(
        {1.0, std::fabs(counter), std::fabs(traced), std::fabs(result)});
    if (std::fabs(counter - traced) > 1e-9 * scale ||
        std::fabs(counter - result) > 1e-9 * scale) {
      err() << what << " mismatch: counter " << counter << ", trace "
            << traced << ", result " << result;
      ok = false;
    }
  };
  if (!o.obs_out.empty()) {
    std::ifstream in(o.obs_out);
    if (!in) {
      err() << "cannot read trace " << o.obs_out;
      return 1;
    }
    const auto records = obs::read_trace(in);
    const auto digest = obs::summarize_trace(records, a.num_tasks);
    obs::join_trace(a, digest);
    book("fault.kills", snap.counter("fault.kills"),
         static_cast<double>(digest.fault_kills),
         static_cast<double>(res.kills));
    book("fault.transfer_timeouts",
         snap.counter("fault.transfer_timeouts"),
         static_cast<double>(digest.fault_transfer_timeouts),
         static_cast<double>(res.transfer_timeouts));
    book("fault.wasted_proc_seconds",
         snap.counter("fault.wasted_proc_seconds"), digest.fault_wasted_s,
         res.wasted_proc_seconds);
    book("recovery.retries", snap.counter("recovery.retries"),
         static_cast<double>(digest.recovery_retries),
         static_cast<double>(res.retries));
    book("recovery.replans", snap.counter("recovery.replans"),
         static_cast<double>(digest.recovery_replans),
         static_cast<double>(res.replans));
    // The final clean round is the only simulated round with observability
    // attached, so the analyzer's remote volume must equal both books.
    book("remote volume", snap.counter("sim.remote_bytes"),
         digest.transfer_bytes, a.locality.remote_bytes);
    if (ok && !o.quiet)
      std::cout << "reconciled      fault/recovery counters == trace == "
                   "result; analyzer remote volume == sim counters\n";
  }

  if (!o.quiet) std::cout << obs::text_report(a);

  if (!o.report_out.empty()) {
    obs::ReportOptions ropt;
    ropt.title = !o.title.empty() ? o.title
                                  : "loc-mps under faults on " +
                                        std::to_string(o.procs) +
                                        " processors";
    std::ostringstream sub;
    sub << g.num_tasks() << " tasks, fault rate " << fmt(o.fault_rate, 2)
        << ", policy " << o.fault_policy << ", realized makespan "
        << fmt(res.makespan, 3) << " s (planned "
        << fmt(res.planned_makespan, 3) << " s)";
    ropt.subtitle = sub.str();
    std::ofstream html(o.report_out);
    if (!html) {
      err() << "cannot open " << o.report_out;
      return 2;
    }
    obs::write_html_report(html, g, res.executed, a, ropt);
    if (!o.quiet) std::cout << "report          " << o.report_out << "\n";
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse(argc, argv);
  if (!opts) return 2;
  const Options& o = *opts;

  try {
    const TaskGraph g = load_workload(o);
    const Cluster cluster(o.procs, o.bandwidth_mbps * 1e6 / 8.0, o.overlap);

    if (!o.diff_a.empty()) return run_diff_mode(o, g);
    if (o.robustness > 0) return run_robustness_mode(o, g, cluster);
    if (o.straggler_rate > 0.0) return run_straggler_mode(o, g, cluster);
    if (o.fault_rate > 0.0) return run_fault_mode(o, g, cluster);

    SchedulerOptions sched_opt;
    sched_opt.threads = o.threads;
    sched_opt.perturb_task = o.perturb_task;
    sched_opt.slack_factor = o.slack;
    const bool want_profile = o.profile || !o.flame_out.empty() ||
                              !o.report_out.empty();
    std::optional<obs::Profiler> profiler;
    if (want_profile) profiler.emplace();
    obs::Profiler* const prof = profiler ? &*profiler : nullptr;
    SchemeRun run;
    if (!o.obs_out.empty()) {
      std::ofstream jsonl(o.obs_out);
      if (!jsonl) {
        err() << "cannot open " << o.obs_out;
        return 2;
      }
      obs::JsonlSink sink(jsonl);
      run = evaluate_scheme(o.scheme, g, cluster, {}, &sink, sched_opt,
                            prof);
    } else {
      run = evaluate_scheme(o.scheme, g, cluster, {}, nullptr, sched_opt,
                            prof);
    }
    obs::ProfileSnapshot prof_snap;
    if (profiler) prof_snap = profiler->snapshot();

    bool reconciled = true;
    if (!o.obs_out.empty())
      reconciled = join_and_reconcile(run, o.obs_out, o.quiet);
    else if (!o.trace_in.empty())
      reconciled = join_and_reconcile(run, o.trace_in, o.quiet);

    // Final decision per task (last "locbs.decision" record), feeding
    // --explain, --why-critical and the report's "Why" panel.
    std::vector<obs::PlacementDecision> decisions;
    {
      const std::string& tp = !o.obs_out.empty() ? o.obs_out : o.trace_in;
      if (!tp.empty()) {
        std::ifstream in(tp);
        if (in)
          decisions =
              obs::final_decisions(obs::read_trace(in), g.num_tasks());
      }
    }

    if (!o.quiet) {
      std::cout << "scheme          " << o.scheme << " on " << o.procs
                << " procs (" << fmt(o.bandwidth_mbps, 0) << " Mbps, "
                << (o.overlap ? "overlap" : "no overlap") << "), "
                << g.num_tasks() << "-task workload\n";
      std::cout << "planning        " << fmt(run.scheduling_seconds, 6)
                << " s\n";
      std::cout << obs::text_report(run.analysis);
    }

    for (TaskId t : o.explain) {
      if (t >= g.num_tasks()) {
        err() << "--explain task " << t << " out of range (graph has "
              << g.num_tasks() << " tasks)";
        return 2;
      }
      std::cout << "\nwhy task " << t << ":\n";
      obs::print_decision(
          std::cout, g,
          t < decisions.size() ? decisions[t] : obs::PlacementDecision{});
    }

    if (o.why_critical) {
      std::cout << "\nwhy-critical: decision records along the critical "
                   "path (source -> makespan task)\n";
      for (const obs::CriticalPathStep& st :
           run.analysis.critical_path.steps) {
        std::cout << "\n-- compute " << fmt(st.compute_s, 4) << " s";
        if (st.redist_s > 0.0)
          std::cout << ", redistribution in " << fmt(st.redist_s, 4)
                    << " s";
        if (st.wait_s > 0.0)
          std::cout << ", wait " << fmt(st.wait_s, 4) << " s";
        std::cout << "\n";
        for (const obs::TaskBlame& b : run.analysis.blame) {
          if (b.task != st.task || b.delay_s <= 0.0 ||
              b.culprit == kNoTask)
            continue;
          std::cout << "   start delayed " << fmt(b.delay_s, 4)
                    << " s by task " << b.culprit << " ("
                    << g.task(b.culprit).name << ")\n";
          break;
        }
        obs::print_decision(
            std::cout, g,
            st.task < decisions.size() ? decisions[st.task]
                                       : obs::PlacementDecision{});
      }
    }

    bool profile_ok = true;
    if (o.profile) {
      std::cout << "\nplanner self-profile (span taxonomy: "
                   "docs/observability.md)\n";
      obs::write_profile_tree(std::cout, prof_snap);
      const obs::ProfileNode* plan = prof_snap.find("harness.plan");
      if (plan == nullptr) {
        err() << "profile has no harness.plan span";
        profile_ok = false;
      } else {
        // Acceptance check: the span tree must reconcile with the
        // harness's own scheduling-time measurement within 2%.
        const double measured = run.scheduling_seconds;
        const double diff = std::fabs(plan->wall_s - measured);
        const double tol = 0.02 * std::max(measured, 1e-9);
        if (diff > tol) {
          err() << "profile/timer mismatch: harness.plan "
                << fmt(plan->wall_s, 6) << " s vs scheduling time "
                << fmt(measured, 6) << " s (diff " << fmt(diff, 6)
                << " s > 2%)";
          profile_ok = false;
        } else {
          std::cout << "reconciled      harness.plan "
                    << fmt(plan->wall_s, 6) << " s == planning "
                    << fmt(measured, 6) << " s (within 2%)\n";
        }
      }
    }

    if (!o.flame_out.empty()) {
      std::ofstream flame(o.flame_out);
      if (!flame) {
        err() << "cannot open " << o.flame_out;
        return 2;
      }
      obs::write_collapsed_stacks(flame, prof_snap, o.flame_weight);
      if (!o.quiet)
        std::cout << "flamegraph      " << o.flame_out
                  << " (collapsed stacks; fold with flamegraph.pl or "
                     "load in speedscope)\n";
    }

    if (!o.report_out.empty()) {
      obs::ReportOptions ropt;
      ropt.title = !o.title.empty()
                       ? o.title
                       : o.scheme + " schedule on " +
                             std::to_string(o.procs) + " processors";
      std::ostringstream sub;
      sub << g.num_tasks() << " tasks, " << g.num_edges() << " edges, "
          << fmt(o.bandwidth_mbps, 0) << " Mbps "
          << (o.overlap ? "overlap" : "no-overlap") << " platform";
      ropt.subtitle = sub.str();
      if (!prof_snap.empty()) ropt.profile = &prof_snap;
      if (decisions.size() == g.num_tasks()) ropt.decisions = &decisions;
      std::ofstream html(o.report_out);
      if (!html) {
        err() << "cannot open " << o.report_out;
        return 2;
      }
      obs::write_html_report(html, g, run.schedule, run.analysis, ropt);
      if (!o.quiet)
        std::cout << "report          " << o.report_out << "\n";
    }
    return reconciled && profile_ok ? 0 : 1;
  } catch (const std::exception& e) {
    err() << e.what();
    return 2;
  }
}
