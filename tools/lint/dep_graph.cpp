#include "dep_graph.hpp"

#include <algorithm>
#include <sstream>

#include "lexer.hpp"

namespace locmps::lint {

namespace {

std::vector<std::string> split_path(std::string_view path) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t slash = path.find('/', start);
    if (slash == std::string_view::npos) slash = path.size();
    if (slash > start) parts.emplace_back(path.substr(start, slash - start));
    start = slash + 1;
  }
  return parts;
}

/// Joins and normalizes, resolving "." and "..". "a/b" + "../c" -> "a/c".
std::string join_normalized(std::string_view dir, std::string_view rel) {
  std::vector<std::string> stack = split_path(dir);
  for (const std::string& part : split_path(rel)) {
    if (part == ".") continue;
    if (part == "..") {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    stack.push_back(part);
  }
  std::string out;
  for (const std::string& part : stack) {
    if (!out.empty()) out += '/';
    out += part;
  }
  return out;
}

std::string dir_of(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? std::string()
                                         : std::string(path.substr(0, slash));
}

/// Extracts `#include "..."` targets and the per-line LINT-ALLOW pragmas
/// from one file, line by line. System includes (<...>) are skipped —
/// they can never be project edges.
struct RawInclude {
  int line;
  std::string target;
};

void scan_file(const std::string& text, std::vector<RawInclude>& includes,
               AllowMap& allows) {
  int line = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    ++line;
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view l(text.data() + pos, eol - pos);
    scan_comment(l, line, allows);
    std::size_t i = l.find_first_not_of(" \t");
    if (i != std::string_view::npos && l[i] == '#') {
      i = l.find_first_not_of(" \t", i + 1);
      if (i != std::string_view::npos && l.substr(i, 7) == "include") {
        i = l.find_first_not_of(" \t", i + 7);
        if (i != std::string_view::npos && l[i] == '"') {
          const std::size_t close = l.find('"', i + 1);
          if (close != std::string_view::npos)
            includes.push_back(
                {line, std::string(l.substr(i + 1, close - i - 1))});
        }
      }
    }
    pos = eol + 1;
    if (eol == text.size()) break;
  }
}

bool line_allows(const AllowMap& allows, int line, const char* rule) {
  for (int l = line - 1; l <= line; ++l) {
    const auto it = allows.find(l);
    if (it != allows.end() && it->second.count(rule)) return true;
  }
  return false;
}

}  // namespace

std::string module_of(std::string_view path) {
  const std::vector<std::string> parts = split_path(path);
  for (std::size_t i = 0; i + 1 < parts.size(); ++i)
    if (parts[i] == "src") {
      // src/<module>/file — a file directly under src/ is module "src".
      return i + 2 < parts.size() ? parts[i + 1] : "src";
    }
  static const std::set<std::string> kTopLevel = {"tools", "bench", "tests",
                                                  "examples"};
  for (std::size_t i = parts.size(); i > 0; --i)
    if (kTopLevel.count(parts[i - 1]) != 0) return parts[i - 1];
  return parts.size() > 1 ? parts.front() : std::string();
}

bool parse_layers(std::string_view text, LayerPolicy& out, std::string& err) {
  out = LayerPolicy{};
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    ++line_no;
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string line(text.substr(pos, eol - pos));
    pos = eol + 1;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::string word;
    if (!(ss >> word)) {
      if (eol == text.size()) break;
      continue;
    }
    std::vector<std::string> names;
    std::string name;
    while (ss >> name) names.push_back(name);
    if (word == "layer") {
      if (names.empty()) {
        err = "layers.txt:" + std::to_string(line_no) +
              ": 'layer' needs at least one module name";
        return false;
      }
      for (const std::string& m : names) {
        if (out.tier.count(m) != 0) {
          err = "layers.txt:" + std::to_string(line_no) + ": module '" + m +
                "' declared in more than one layer";
          return false;
        }
        out.tier[m] = static_cast<int>(out.tiers.size());
      }
      out.tiers.push_back(names);
    } else if (word == "open") {
      if (names.empty()) {
        err = "layers.txt:" + std::to_string(line_no) +
              ": 'open' needs at least one module name";
        return false;
      }
      for (const std::string& m : names) {
        if (out.tier.count(m) == 0) {
          err = "layers.txt:" + std::to_string(line_no) + ": open module '" +
                m + "' must be declared in a layer first";
          return false;
        }
        out.open_modules.insert(m);
      }
    } else {
      err = "layers.txt:" + std::to_string(line_no) + ": unknown keyword '" +
            word + "' (expected 'layer' or 'open')";
      return false;
    }
    if (eol == text.size()) break;
  }
  if (out.tiers.empty()) {
    err = "layers.txt declares no layers";
    return false;
  }
  return true;
}

DepGraph build_dep_graph(const SourceSet& src) {
  DepGraph g;
  g.files.reserve(src.files.size());
  for (const auto& [path, text] : src.files) g.files.push_back(path);
  for (const auto& [path, text] : src.files) {
    std::vector<RawInclude> includes;
    AllowMap allows;
    scan_file(text, includes, allows);
    const std::string dir = dir_of(path);
    for (const RawInclude& inc : includes) {
      std::string resolved;
      auto try_candidate = [&](std::string cand) {
        if (resolved.empty() && src.files.count(cand) != 0)
          resolved = std::move(cand);
      };
      for (const std::string& root : src.roots)
        try_candidate(join_normalized(root, inc.target));
      try_candidate(join_normalized("src", inc.target));
      try_candidate(join_normalized(dir, inc.target));
      if (resolved.empty()) continue;  // system or generated header
      g.edges.push_back(
          {path, resolved, inc.line,
           line_allows(allows, inc.line, "layer-violation"),
           line_allows(allows, inc.line, "include-cycle")});
    }
  }
  std::sort(g.edges.begin(), g.edges.end(),
            [](const IncludeEdge& a, const IncludeEdge& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.line != b.line) return a.line < b.line;
              return a.to < b.to;
            });
  return g;
}

std::vector<Finding> check_layers(const DepGraph& g, const LayerPolicy& p) {
  std::vector<Finding> out;
  std::set<std::string> undeclared_reported;
  for (const IncludeEdge& e : g.edges) {
    const std::string from_mod = module_of(e.from);
    const std::string to_mod = module_of(e.to);
    if (from_mod == to_mod) continue;
    if (p.open_modules.count(to_mod) != 0) continue;
    const auto from_it = p.tier.find(from_mod);
    const auto to_it = p.tier.find(to_mod);
    if (from_it == p.tier.end() || to_it == p.tier.end()) {
      const std::string& missing =
          from_it == p.tier.end() ? from_mod : to_mod;
      if (undeclared_reported.insert(missing).second)
        out.push_back({e.from, e.line, "layer-violation",
                       "module '" + missing +
                           "' has cross-module includes but is not "
                           "declared in tools/lint/layers.txt"});
      continue;
    }
    if (to_it->second < from_it->second) continue;  // strictly downward: OK
    if (e.allowed_layer) continue;
    const bool sideways = to_it->second == from_it->second;
    out.push_back(
        {e.from, e.line, "layer-violation",
         "include of \"" + e.to + "\" makes module '" + from_mod +
             "' (tier " + std::to_string(from_it->second) + ") depend " +
             (sideways ? "sideways on" : "upward on") + " module '" +
             to_mod + "' (tier " + std::to_string(to_it->second) +
             "); the layering policy in tools/lint/layers.txt only allows "
             "strictly downward dependencies"});
  }
  return out;
}

std::vector<Finding> find_cycles(const DepGraph& g) {
  // Tarjan SCC, iterative, over the sorted file list for determinism.
  std::map<std::string, std::vector<std::size_t>> adj;  // file -> edge idx
  for (std::size_t i = 0; i < g.edges.size(); ++i)
    adj[g.edges[i].from].push_back(i);

  std::map<std::string, int> index, low;
  std::set<std::string> on_stack;
  std::vector<std::string> stack;
  std::vector<std::vector<std::string>> sccs;
  int next_index = 0;

  struct Frame {
    std::string node;
    std::size_t edge_pos = 0;
  };
  for (const std::string& start : g.files) {
    if (index.count(start) != 0) continue;
    std::vector<Frame> frames{{start, 0}};
    index[start] = low[start] = next_index++;
    stack.push_back(start);
    on_stack.insert(start);
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto edges_it = adj.find(f.node);
      const std::size_t degree =
          edges_it == adj.end() ? 0 : edges_it->second.size();
      if (f.edge_pos < degree) {
        const std::string& to = g.edges[edges_it->second[f.edge_pos]].to;
        ++f.edge_pos;
        if (index.count(to) == 0) {
          index[to] = low[to] = next_index++;
          stack.push_back(to);
          on_stack.insert(to);
          frames.push_back({to, 0});
        } else if (on_stack.count(to) != 0) {
          low[f.node] = std::min(low[f.node], index[to]);
        }
        continue;
      }
      if (low[f.node] == index[f.node]) {
        std::vector<std::string> scc;
        for (;;) {
          const std::string n = stack.back();
          stack.pop_back();
          on_stack.erase(n);
          scc.push_back(n);
          if (n == f.node) break;
        }
        if (scc.size() > 1) {
          std::sort(scc.begin(), scc.end());
          sccs.push_back(std::move(scc));
        }
      }
      const std::string done = f.node;
      frames.pop_back();
      if (!frames.empty())
        low[frames.back().node] =
            std::min(low[frames.back().node], low[done]);
    }
  }
  // Self-includes are cycles too.
  for (const IncludeEdge& e : g.edges)
    if (e.from == e.to) sccs.push_back({e.from});

  std::sort(sccs.begin(), sccs.end());
  std::vector<Finding> out;
  for (const std::vector<std::string>& scc : sccs) {
    const std::set<std::string> members(scc.begin(), scc.end());
    // Recover one concrete cycle path starting at the smallest member:
    // DFS restricted to the SCC until we step back onto the start.
    const std::string& start = scc.front();
    std::vector<std::string> path{start};
    std::set<std::string> visited{start};
    std::vector<const IncludeEdge*> path_edges;
    bool closed = scc.size() == 1;  // self-include
    while (!closed) {
      const std::string& cur = path.back();
      const IncludeEdge* step = nullptr;
      for (const IncludeEdge& e : g.edges) {
        if (e.from != cur || members.count(e.to) == 0) continue;
        if (e.to == start) {
          step = &e;
          break;
        }
        if (visited.count(e.to) == 0 && step == nullptr) step = &e;
      }
      if (step == nullptr) break;  // dead end; report members instead
      path_edges.push_back(step);
      if (step->to == start) {
        closed = true;
      } else {
        path.push_back(step->to);
        visited.insert(step->to);
      }
    }
    bool allowed = false;
    for (const IncludeEdge* e : path_edges)
      if (e->allowed_cycle) allowed = true;
    if (scc.size() == 1) {
      for (const IncludeEdge& e : g.edges)
        if (e.from == scc.front() && e.to == scc.front() && e.allowed_cycle)
          allowed = true;
    }
    if (allowed) continue;
    std::string msg = "include cycle: ";
    if (closed) {
      msg += start;
      for (const IncludeEdge* e : path_edges) msg += " -> " + e->to;
      if (scc.size() == 1) msg += " -> " + start;
    } else {
      for (std::size_t i = 0; i < scc.size(); ++i)
        msg += (i != 0 ? " <-> " : "") + scc[i];
    }
    const int line =
        path_edges.empty() ? 1 : path_edges.front()->line;
    out.push_back({start, line, "include-cycle", std::move(msg)});
  }
  return out;
}

std::string to_dot(const DepGraph& g, const LayerPolicy& p) {
  // Aggregate file edges to module edges with multiplicities.
  std::map<std::pair<std::string, std::string>, int> mod_edges;
  std::set<std::string> modules;
  for (const IncludeEdge& e : g.edges) {
    const std::string a = module_of(e.from), b = module_of(e.to);
    modules.insert(a);
    modules.insert(b);
    if (a != b) ++mod_edges[{a, b}];
  }
  std::ostringstream dot;
  dot << "// Generated by locmps-lint --deps-dot; do not edit.\n"
      << "// Arrows point at the dependency: A -> B means A includes B.\n"
      << "digraph locmps_modules {\n"
      << "  rankdir=BT;\n"
      << "  node [shape=box, fontsize=11];\n";
  for (std::size_t t = 0; t < p.tiers.size(); ++t) {
    bool any = false;
    for (const std::string& m : p.tiers[t]) any |= modules.count(m) != 0;
    if (!any) continue;  // tier with no scanned modules (e.g. tests)
    dot << "  { rank=same;";
    for (const std::string& m : p.tiers[t])
      if (modules.count(m) != 0) dot << " \"" << m << "\";";
    dot << " }  // tier " << t << "\n";
  }
  for (const std::string& m : modules) {
    dot << "  \"" << m << "\"";
    if (p.open_modules.count(m) != 0)
      dot << " [style=filled, fillcolor=lightgrey, "
             "tooltip=\"open: cross-cutting, reachable from any tier\"]";
    else if (p.tier.count(m) == 0)
      dot << " [style=dashed, tooltip=\"undeclared in layers.txt\"]";
    dot << ";\n";
  }
  for (const auto& [edge, count] : mod_edges)
    dot << "  \"" << edge.first << "\" -> \"" << edge.second
        << "\" [label=\"" << count << "\"];\n";
  dot << "}\n";
  return dot.str();
}

}  // namespace locmps::lint
