#pragma once
/// \file dep_graph.hpp
/// locmps-lint pass 1: the project-wide include graph.
///
/// The per-file rules (lint_core) see one translation unit at a time and
/// can defend *local* determinism contracts. The architectural contract —
/// `src/obs` must not grow a dependency on `src/schedulers`, the
/// coarsen→allocate→place→backfill decomposition stays a DAG of modules —
/// is cross-module by nature, so this pass parses every `#include` across
/// the tree, builds the file- and module-level dependency graph, and
/// checks it against the declared layering policy in
/// `tools/lint/layers.txt`:
///
///   * `layer-violation` — a project include whose target module sits in
///     the same or a higher tier than the including module (policy is
///     strictly downward);
///   * `include-cycle` — a strongly connected component in the *file*
///     include graph, with the cycle path printed.
///
/// Policy file syntax (one declaration per line, '#' comments):
///
///   layer util                  # tier 0, the bottom
///   layer cluster speedup      # tier 1: may include tier 0 only
///   ...
///   open obs                    # cross-cutting: may be *depended on*
///                               # from any tier; its own includes are
///                               # still checked at its declared tier
///
/// Both rules honor the usual inline suppression — a
/// `// LINT-ALLOW(layer-violation)` trailing the `#include` (or on the
/// line above) — and the committed baseline, exactly like the per-file
/// rules. The module graph is exported as DOT via `locmps-lint
/// --deps-dot` for docs/static_analysis.md.

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint_core.hpp"

namespace locmps::lint {

/// The sources the graph is built from. An abstraction over the
/// filesystem so fixture tests can assemble trees in memory.
struct SourceSet {
  /// path -> file contents. Paths are repo-relative with forward slashes.
  std::map<std::string, std::string> files;
  /// The directory roots the walk started from, used (in order) to
  /// resolve quoted includes in scratch trees (`seeded/src` + "core/x.hpp").
  std::vector<std::string> roots;
};

/// One resolved project-include edge.
struct IncludeEdge {
  std::string from;     ///< including file
  std::string to;       ///< resolved included file
  int line = 0;         ///< line of the #include in `from`
  bool allowed_layer = false;  ///< LINT-ALLOW(layer-violation) at the site
  bool allowed_cycle = false;  ///< LINT-ALLOW(include-cycle) at the site
};

struct DepGraph {
  std::vector<std::string> files;   ///< all scanned files, sorted
  std::vector<IncludeEdge> edges;   ///< resolved quoted includes, sorted
};

/// The layering policy parsed from layers.txt.
struct LayerPolicy {
  std::map<std::string, int> tier;      ///< module -> tier index (0 = bottom)
  std::set<std::string> open_modules;   ///< depended on from any tier
  std::vector<std::vector<std::string>> tiers;  ///< for printing/DOT
};

/// Module of a repo-relative path: the directory component after the
/// first `src` component ("src/graph/x.hpp" -> "graph", also
/// "seeded/src/graph/x.hpp" -> "graph"); otherwise the last component
/// among {tools, bench, tests, examples} ("tools/lint/x.cpp" -> "tools");
/// otherwise the first directory component.
std::string module_of(std::string_view path);

/// Parses layers.txt. Returns false and sets \p err on a syntax error
/// (unknown keyword, module declared twice, empty layer line).
bool parse_layers(std::string_view text, LayerPolicy& out, std::string& err);

/// Scans every file in \p src for quoted includes and resolves them
/// against (in order) each root, "src/", and the includer's directory.
/// Unresolved includes (system headers, generated files) are dropped.
DepGraph build_dep_graph(const SourceSet& src);

/// layer-violation findings for every edge that crosses modules against
/// the policy (same-tier or upward), plus one finding per module that
/// has cross-module edges but no declared tier.
std::vector<Finding> check_layers(const DepGraph& g, const LayerPolicy& p);

/// include-cycle findings: one per strongly connected component of the
/// file include graph with more than one file (or a self-include), the
/// cycle path printed in deterministic order.
std::vector<Finding> find_cycles(const DepGraph& g);

/// The module-level dependency graph as DOT, tiers ranked bottom-up,
/// edges labeled with their file-edge multiplicity. Deterministic output.
std::string to_dot(const DepGraph& g, const LayerPolicy& p);

}  // namespace locmps::lint
