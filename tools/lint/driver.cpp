#include "driver.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "dep_graph.hpp"
#include "lint_core.hpp"

// Baked in at configure time by tools/CMakeLists.txt (git describe),
// matching locmps-inspect --version.
#ifndef LOCMPS_GIT_DESCRIBE
#define LOCMPS_GIT_DESCRIBE "unknown"
#endif

namespace fs = std::filesystem;

namespace locmps::lint {

namespace {

constexpr const char* kUsage =
    "usage: locmps-lint [options] PATH...\n"
    "\n"
    "Project determinism/hygiene checker (docs/static_analysis.md).\n"
    "Lints every .cpp/.hpp under each PATH with the per-file rules, and\n"
    "with --deps additionally checks the project-wide include graph\n"
    "against the layering policy.\n"
    "\n"
    "options:\n"
    "  --baseline FILE   grandfather list (one \"path:rule\" per line);\n"
    "                    entries may only ever shrink\n"
    "  --deps            run the dependency passes: layer-violation and\n"
    "                    include-cycle over the project include graph\n"
    "  --layers FILE     layering policy for --deps\n"
    "                    (default: tools/lint/layers.txt)\n"
    "  --deps-dot FILE   write the module dependency graph as DOT to FILE\n"
    "                    ('-' = stdout); implies --deps\n"
    "  --format MODE     text (default), json, or github\n"
    "                    (workflow-command annotations for CI)\n"
    "  --list-rules      print the rule names and exit\n"
    "  --help, -h        this message\n"
    "  --version         print the build's git describe and exit\n"
    "\n"
    "exit codes: 0 clean, 1 findings, 2 usage or I/O error\n";

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

/// Path as reported: relative, forward slashes, no leading "./".
std::string display_path(const fs::path& p) {
  std::string s = p.generic_string();
  if (s.rfind("./", 0) == 0) s.erase(0, 2);
  return s;
}

std::set<std::string> read_baseline(const std::string& file, bool& ok,
                                    std::ostream& err) {
  std::set<std::string> entries;
  ok = true;
  if (file.empty()) return entries;
  std::ifstream in(file);
  if (!in) {
    err << "locmps-lint: cannot read baseline " << file << "\n";
    ok = false;
    return entries;
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r' ||
                             line.back() == '\t'))
      line.pop_back();
    std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    entries.insert(line.substr(start));
  }
  return entries;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// GitHub workflow-command data escaping (%, CR, LF).
std::string gh_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '%') out += "%25";
    else if (c == '\r') out += "%0D";
    else if (c == '\n') out += "%0A";
    else out += c;
  }
  return out;
}

struct Cli {
  std::string baseline_file;
  std::string layers_file = "tools/lint/layers.txt";
  std::string deps_dot;  // empty = off, "-" = stdout
  std::string format = "text";
  bool deps = false;
  bool list_rules = false;
  bool help = false;
  bool version = false;
  std::vector<std::string> paths;
};

/// Parses argv[1..]; returns false (usage error) with a message on err.
bool parse_args(const std::vector<std::string>& args, Cli& cli,
                std::ostream& err) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&](const char* flag) -> const std::string* {
      if (++i >= args.size()) {
        err << "locmps-lint: " << flag << " needs an argument\n";
        return nullptr;
      }
      return &args[i];
    };
    if (arg == "--baseline") {
      const std::string* v = need_value("--baseline");
      if (v == nullptr) return false;
      cli.baseline_file = *v;
    } else if (arg == "--layers") {
      const std::string* v = need_value("--layers");
      if (v == nullptr) return false;
      cli.layers_file = *v;
    } else if (arg == "--deps") {
      cli.deps = true;
    } else if (arg == "--deps-dot") {
      const std::string* v = need_value("--deps-dot");
      if (v == nullptr) return false;
      cli.deps_dot = *v;
      cli.deps = true;
    } else if (arg == "--format" || arg.rfind("--format=", 0) == 0) {
      std::string mode;
      if (arg == "--format") {
        const std::string* v = need_value("--format");
        if (v == nullptr) return false;
        mode = *v;
      } else {
        mode = arg.substr(9);
      }
      if (mode != "text" && mode != "json" && mode != "github") {
        err << "locmps-lint: unknown format '" << mode
            << "' (expected text, json, or github)\n";
        return false;
      }
      cli.format = mode;
    } else if (arg == "--list-rules") {
      cli.list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      cli.help = true;
    } else if (arg == "--version") {
      cli.version = true;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "locmps-lint: unknown option " << arg << "\n" << kUsage;
      return false;
    } else {
      cli.paths.push_back(arg);
    }
  }
  return true;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  Cli cli;
  if (!parse_args(args, cli, err)) return 2;
  if (cli.help) {
    out << kUsage;
    return 0;
  }
  if (cli.version) {
    out << "locmps-lint " << LOCMPS_GIT_DESCRIBE << "\n";
    return 0;
  }
  if (cli.list_rules) {
    for (const std::string& r : rule_names()) out << r << "\n";
    return 0;
  }
  if (cli.paths.empty()) {
    err << kUsage;
    return 2;
  }

  bool baseline_ok = false;
  const std::set<std::string> baseline =
      read_baseline(cli.baseline_file, baseline_ok, err);
  if (!baseline_ok) return 2;

  std::vector<std::string> files;
  std::vector<std::string> roots;
  for (const std::string& p : cli.paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      roots.push_back(display_path(p));
      for (fs::recursive_directory_iterator it(p, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && lintable(it->path()))
          files.push_back(display_path(it->path()));
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(display_path(p));
    } else {
      err << "locmps-lint: no such path " << p << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::size_t checked = 0, suppressed = 0;
  std::vector<Finding> findings;
  SourceSet sources;
  sources.roots = roots;
  for (const std::string& file : files) {
    if (skip_path(file)) continue;
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      err << "locmps-lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    ++checked;
    for (Finding& f : lint_source(file, text, options_for(file)))
      findings.push_back(std::move(f));
    if (cli.deps) sources.files.emplace(file, std::move(text));
  }

  if (cli.deps) {
    std::ifstream lin(cli.layers_file);
    if (!lin) {
      err << "locmps-lint: cannot read layers file " << cli.layers_file
          << " (required by --deps)\n";
      return 2;
    }
    std::ostringstream lss;
    lss << lin.rdbuf();
    LayerPolicy policy;
    std::string perr;
    if (!parse_layers(lss.str(), policy, perr)) {
      err << "locmps-lint: " << perr << "\n";
      return 2;
    }
    const DepGraph graph = build_dep_graph(sources);
    for (Finding& f : check_layers(graph, policy))
      findings.push_back(std::move(f));
    for (Finding& f : find_cycles(graph)) findings.push_back(std::move(f));
    if (!cli.deps_dot.empty()) {
      const std::string dot = to_dot(graph, policy);
      if (cli.deps_dot == "-") {
        out << dot;
      } else {
        std::ofstream dout(cli.deps_dot, std::ios::binary);
        if (!dout) {
          err << "locmps-lint: cannot write " << cli.deps_dot << "\n";
          return 2;
        }
        dout << dot;
      }
    }
  }

  // Baseline filter, then a stable global order for every output format.
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    if (baseline.count(f.file + ":" + f.rule) != 0) {
      ++suppressed;
      continue;
    }
    kept.push_back(std::move(f));
  }
  std::sort(kept.begin(), kept.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  if (cli.format == "json") {
    out << "{\n  \"tool\": \"locmps-lint\",\n  \"version\": \""
        << json_escape(LOCMPS_GIT_DESCRIBE) << "\",\n  \"files_checked\": "
        << checked << ",\n  \"suppressed\": " << suppressed
        << ",\n  \"findings\": [";
    for (std::size_t i = 0; i < kept.size(); ++i) {
      const Finding& f = kept[i];
      out << (i == 0 ? "\n" : ",\n")
          << "    {\"file\": \"" << json_escape(f.file)
          << "\", \"line\": " << f.line << ", \"rule\": \""
          << json_escape(f.rule) << "\", \"message\": \""
          << json_escape(f.message) << "\"}";
    }
    out << (kept.empty() ? "]" : "\n  ]") << "\n}\n";
  } else if (cli.format == "github") {
    for (const Finding& f : kept)
      out << "::error file=" << gh_escape(f.file) << ",line=" << f.line
          << ",title=" << gh_escape(f.rule)
          << "::" << gh_escape(f.message) << "\n";
  } else {
    for (const Finding& f : kept) out << format(f) << "\n";
  }
  err << "locmps-lint: " << checked << " file(s), " << kept.size()
      << " finding(s)";
  if (suppressed != 0) err << ", " << suppressed << " baselined";
  err << "\n";
  return kept.empty() ? 0 : 1;
}

}  // namespace locmps::lint
