#pragma once
/// \file driver.hpp
/// locmps-lint CLI engine, as a library so tests/test_lint.cpp can drive
/// the real command line — argument parsing, exit codes, output formats —
/// in-process instead of shelling out to the binary.
///
///   locmps-lint [options] PATH...
///
/// Walks every PATH (file or directory) for .cpp/.hpp sources, runs the
/// per-file rules (lint_core) on each, optionally runs the project-wide
/// dependency passes (dep_graph: layer-violation, include-cycle), filters
/// findings through the committed baseline, and prints the rest in the
/// selected format. Exit 0 = clean, 1 = findings, 2 = usage or I/O error.

#include <iosfwd>
#include <string>
#include <vector>

namespace locmps::lint {

/// Runs the CLI with \p args (argv[1..]); diagnostics to \p err, findings
/// and reports to \p out. Returns the process exit code.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace locmps::lint
