#include "lexer.hpp"

#include <algorithm>
#include <cctype>

namespace locmps::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Classifies a pp-number as integral or floating. Hex floats ('p'
/// exponent) and anything with a '.' or a decimal exponent are floating.
Kind number_kind(std::string_view t) {
  const bool hex = t.size() > 1 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X');
  if (t.find('.') != std::string_view::npos) return Kind::FloatLit;
  for (std::size_t i = 1; i < t.size(); ++i) {
    const char c = t[i];
    if (hex && (c == 'p' || c == 'P')) return Kind::FloatLit;
    if (!hex && (c == 'e' || c == 'E') && i + 1 < t.size() &&
        (std::isdigit(static_cast<unsigned char>(t[i + 1])) ||
         t[i + 1] == '+' || t[i + 1] == '-'))
      return Kind::FloatLit;
  }
  return Kind::Number;
}

}  // namespace

void scan_comment(std::string_view comment, int line, AllowMap& allows) {
  constexpr std::string_view kTag = "LINT-ALLOW(";
  std::size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string_view::npos) {
    pos += kTag.size();
    const std::size_t close = comment.find(')', pos);
    if (close == std::string_view::npos) return;
    std::string_view list = comment.substr(pos, close - pos);
    std::size_t start = 0;
    while (start <= list.size()) {
      std::size_t comma = list.find(',', start);
      if (comma == std::string_view::npos) comma = list.size();
      std::string_view rule = list.substr(start, comma - start);
      while (!rule.empty() && rule.front() == ' ') rule.remove_prefix(1);
      while (!rule.empty() && rule.back() == ' ') rule.remove_suffix(1);
      if (!rule.empty()) allows[line].insert(std::string(rule));
      start = comma + 1;
    }
    pos = close;
  }
}

Lexed lex(std::string_view s) {
  Lexed out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = s.size();
  bool at_line_start = true;  // only whitespace seen on this line so far

  auto newline = [&] {
    ++line;
    at_line_start = true;
  };

  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: consume the (possibly continued) line.
    if (c == '#' && at_line_start) {
      std::string text;
      while (i < n) {
        if (s[i] == '\\' && i + 1 < n && s[i + 1] == '\n') {
          newline();
          i += 2;
          text += ' ';
          continue;
        }
        if (s[i] == '\n') break;
        text += s[i++];
      }
      out.directives.push_back({line, text});
      continue;
    }
    at_line_start = false;
    // Comments (scanned for LINT-ALLOW pragmas).
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      const std::size_t end = s.find('\n', i);
      const std::size_t stop = end == std::string_view::npos ? n : end;
      scan_comment(s.substr(i, stop - i), line, out.allows);
      i = stop;
      continue;
    }
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      const int first_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(s[j] == '*' && s[j + 1] == '/')) {
        if (s[j] == '\n') ++line;
        ++j;
      }
      const std::size_t stop = std::min(n, j + 2);
      scan_comment(s.substr(i, stop - i), first_line, out.allows);
      i = stop;
      continue;
    }
    // Raw strings: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && s[i + 1] == '"') {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && s[p] != '(') delim += s[p++];
      const std::string close = ")" + delim + "\"";
      const std::size_t end = s.find(close, p);
      const std::size_t stop =
          end == std::string_view::npos ? n : end + close.size();
      line += static_cast<int>(
          std::count(s.begin() + static_cast<long>(i),
                     s.begin() + static_cast<long>(stop), '\n'));
      i = stop;
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && s[j] != quote) {
        if (s[j] == '\\' && j + 1 < n) ++j;
        if (s[j] == '\n') ++line;  // unterminated; keep line counts sane
        ++j;
      }
      i = std::min(n, j + 1);
      continue;
    }
    // Identifiers.
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(s[j])) ++j;
      out.tokens.push_back(
          {Kind::Ident, std::string(s.substr(i, j - i)), line});
      i = j;
      continue;
    }
    // pp-numbers, including ".5" and exponent signs.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
      std::size_t j = i;
      while (j < n) {
        const char d = s[j];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++j;
          continue;
        }
        if ((d == '+' || d == '-') && j > i) {
          const char prev = s[j - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++j;
            continue;
          }
        }
        break;
      }
      std::string text(s.substr(i, j - i));
      out.tokens.push_back({number_kind(text), std::move(text), line});
      i = j;
      continue;
    }
    // Punctuation; multi-char operators the rules care about.
    static constexpr std::string_view kTwo[] = {"::", "->", "==", "!=", "<=",
                                                ">=", "&&", "||", "+=", "-=",
                                                "<<", ">>"};
    std::string text(1, c);
    if (i + 1 < n) {
      const std::string_view two = s.substr(i, 2);
      for (std::string_view t : kTwo)
        if (two == t) {
          text = std::string(two);
          break;
        }
    }
    out.tokens.push_back({Kind::Punct, text, line});
    i += text.size();
  }
  return out;
}

bool std_qualified(const std::vector<Token>& toks, std::size_t i) {
  return i >= 2 && is(toks[i - 1], "::") && is(toks[i - 2], "std");
}

std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          std::string_view opener, std::string_view closer) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (is(toks[j], opener)) ++depth;
    if (is(toks[j], closer) && --depth == 0) return j + 1;
  }
  return toks.size();
}

std::size_t skip_template_args(const std::vector<Token>& toks,
                               std::size_t i) {
  if (i >= toks.size() || !is(toks[i], "<")) return i;
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (is(toks[j], "<")) ++depth;
    else if (is(toks[j], ">") && --depth == 0) return j + 1;
    else if (is(toks[j], ">>") && (depth -= 2) <= 0) return j + 1;
  }
  return toks.size();
}

}  // namespace locmps::lint
