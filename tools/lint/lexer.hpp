#pragma once
/// \file lexer.hpp
/// locmps-lint: the shared C++ token stream.
///
/// A deliberately simple lexer — strings, raw strings, comments and
/// preprocessor directives are handled; macros are not expanded. One
/// translation unit in, a flat token stream plus the directive lines and
/// the per-line LINT-ALLOW suppressions out. Both the per-file rules
/// (lint_core) and the declaration tracker (symbols) consume this stream,
/// so they agree on line numbers and on what counts as code.

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace locmps::lint {

enum class Kind { Ident, Number, FloatLit, Punct };

struct Token {
  Kind kind;
  std::string text;
  int line;
};

struct Directive {
  int line;
  std::string text;  // the directive line, '#' included, trimmed
};

/// Per-line LINT-ALLOW suppressions harvested from comments.
using AllowMap = std::map<int, std::set<std::string>>;

struct Lexed {
  std::vector<Token> tokens;
  std::vector<Directive> directives;
  AllowMap allows;
};

Lexed lex(std::string_view s);

/// Records `LINT-ALLOW(a,b)` pragmas found inside \p comment at \p line.
void scan_comment(std::string_view comment, int line, AllowMap& allows);

// Small helpers over the token stream, shared by the rule passes.

inline bool is(const Token& t, std::string_view text) {
  return t.text == text;
}

inline const Token* prev_tok(const std::vector<Token>& toks, std::size_t i) {
  return i > 0 ? &toks[i - 1] : nullptr;
}
inline const Token* next_tok(const std::vector<Token>& toks, std::size_t i) {
  return i + 1 < toks.size() ? &toks[i + 1] : nullptr;
}

/// True when toks[i] is qualified as std::NAME (possibly ::std::NAME).
bool std_qualified(const std::vector<Token>& toks, std::size_t i);

/// Index just past the matching closer for the opener at \p open.
std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          std::string_view opener, std::string_view closer);

/// Skips a template argument list starting at a '<' (best effort: '>'
/// tokens inside are assumed to be closers, which holds for type lists).
std::size_t skip_template_args(const std::vector<Token>& toks, std::size_t i);

}  // namespace locmps::lint
