#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

namespace locmps::lint {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class Kind { Ident, Number, FloatLit, Punct };

struct Token {
  Kind kind;
  std::string text;
  int line;
};

struct Directive {
  int line;
  std::string text;  // the directive line, '#' included, trimmed
};

/// Per-line LINT-ALLOW suppressions harvested from comments.
using AllowMap = std::map<int, std::set<std::string>>;

struct Lexed {
  std::vector<Token> tokens;
  std::vector<Directive> directives;
  AllowMap allows;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Records `LINT-ALLOW(a,b)` pragmas found inside a comment.
void scan_comment(std::string_view comment, int line, AllowMap& allows) {
  constexpr std::string_view kTag = "LINT-ALLOW(";
  std::size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string_view::npos) {
    pos += kTag.size();
    const std::size_t close = comment.find(')', pos);
    if (close == std::string_view::npos) return;
    std::string_view list = comment.substr(pos, close - pos);
    std::size_t start = 0;
    while (start <= list.size()) {
      std::size_t comma = list.find(',', start);
      if (comma == std::string_view::npos) comma = list.size();
      std::string_view rule = list.substr(start, comma - start);
      while (!rule.empty() && rule.front() == ' ') rule.remove_prefix(1);
      while (!rule.empty() && rule.back() == ' ') rule.remove_suffix(1);
      if (!rule.empty()) allows[line].insert(std::string(rule));
      start = comma + 1;
    }
    pos = close;
  }
}

/// Classifies a pp-number as integral or floating. Hex floats ('p'
/// exponent) and anything with a '.' or a decimal exponent are floating.
Kind number_kind(std::string_view t) {
  const bool hex = t.size() > 1 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X');
  if (t.find('.') != std::string_view::npos) return Kind::FloatLit;
  for (std::size_t i = 1; i < t.size(); ++i) {
    const char c = t[i];
    if (hex && (c == 'p' || c == 'P')) return Kind::FloatLit;
    if (!hex && (c == 'e' || c == 'E') && i + 1 < t.size() &&
        (std::isdigit(static_cast<unsigned char>(t[i + 1])) ||
         t[i + 1] == '+' || t[i + 1] == '-'))
      return Kind::FloatLit;
  }
  return Kind::Number;
}

Lexed lex(std::string_view s) {
  Lexed out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = s.size();
  bool at_line_start = true;  // only whitespace seen on this line so far

  auto newline = [&] {
    ++line;
    at_line_start = true;
  };

  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: consume the (possibly continued) line.
    if (c == '#' && at_line_start) {
      std::string text;
      while (i < n) {
        if (s[i] == '\\' && i + 1 < n && s[i + 1] == '\n') {
          newline();
          i += 2;
          text += ' ';
          continue;
        }
        if (s[i] == '\n') break;
        text += s[i++];
      }
      out.directives.push_back({line, text});
      continue;
    }
    at_line_start = false;
    // Comments (scanned for LINT-ALLOW pragmas).
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      const std::size_t end = s.find('\n', i);
      const std::size_t stop = end == std::string_view::npos ? n : end;
      scan_comment(s.substr(i, stop - i), line, out.allows);
      i = stop;
      continue;
    }
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      const int first_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(s[j] == '*' && s[j + 1] == '/')) {
        if (s[j] == '\n') ++line;
        ++j;
      }
      const std::size_t stop = std::min(n, j + 2);
      scan_comment(s.substr(i, stop - i), first_line, out.allows);
      i = stop;
      continue;
    }
    // Raw strings: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && s[i + 1] == '"') {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && s[p] != '(') delim += s[p++];
      const std::string close = ")" + delim + "\"";
      const std::size_t end = s.find(close, p);
      const std::size_t stop =
          end == std::string_view::npos ? n : end + close.size();
      line += static_cast<int>(
          std::count(s.begin() + static_cast<long>(i),
                     s.begin() + static_cast<long>(stop), '\n'));
      i = stop;
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && s[j] != quote) {
        if (s[j] == '\\' && j + 1 < n) ++j;
        if (s[j] == '\n') ++line;  // unterminated; keep line counts sane
        ++j;
      }
      i = std::min(n, j + 1);
      continue;
    }
    // Identifiers.
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(s[j])) ++j;
      out.tokens.push_back(
          {Kind::Ident, std::string(s.substr(i, j - i)), line});
      i = j;
      continue;
    }
    // pp-numbers, including ".5" and exponent signs.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
      std::size_t j = i;
      while (j < n) {
        const char d = s[j];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++j;
          continue;
        }
        if ((d == '+' || d == '-') && j > i) {
          const char prev = s[j - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++j;
            continue;
          }
        }
        break;
      }
      std::string text(s.substr(i, j - i));
      out.tokens.push_back({number_kind(text), std::move(text), line});
      i = j;
      continue;
    }
    // Punctuation; multi-char operators the rules care about.
    static constexpr std::string_view kTwo[] = {"::", "->", "==", "!=", "<=",
                                                ">=", "&&", "||", "+=", "-=",
                                                "<<", ">>"};
    std::string text(1, c);
    if (i + 1 < n) {
      const std::string_view two = s.substr(i, 2);
      for (std::string_view t : kTwo)
        if (two == t) {
          text = std::string(two);
          break;
        }
    }
    out.tokens.push_back({Kind::Punct, text, line});
    i += text.size();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shared helpers over the token stream
// ---------------------------------------------------------------------------

bool is(const Token& t, std::string_view text) { return t.text == text; }

const Token* prev_tok(const std::vector<Token>& toks, std::size_t i) {
  return i > 0 ? &toks[i - 1] : nullptr;
}
const Token* next_tok(const std::vector<Token>& toks, std::size_t i) {
  return i + 1 < toks.size() ? &toks[i + 1] : nullptr;
}

/// True when toks[i] is qualified as std::NAME (possibly ::std::NAME).
bool std_qualified(const std::vector<Token>& toks, std::size_t i) {
  return i >= 2 && is(toks[i - 1], "::") && is(toks[i - 2], "std");
}

/// Index just past the matching closer for the opener at \p open.
std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          std::string_view opener, std::string_view closer) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (is(toks[j], opener)) ++depth;
    if (is(toks[j], closer) && --depth == 0) return j + 1;
  }
  return toks.size();
}

/// Skips a template argument list starting at a '<' (best effort: '>'
/// tokens inside are assumed to be closers, which holds for type lists).
std::size_t skip_template_args(const std::vector<Token>& toks,
                               std::size_t i) {
  if (i >= toks.size() || !is(toks[i], "<")) return i;
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (is(toks[j], "<")) ++depth;
    else if (is(toks[j], ">") && --depth == 0) return j + 1;
    else if (is(toks[j], ">>") && (depth -= 2) <= 0) return j + 1;
  }
  return toks.size();
}

const std::set<std::string, std::less<>> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/// Names of variables declared in this file with an unordered container
/// type, plus aliases introduced by `using X = std::unordered_map<...>`.
std::set<std::string> collect_unordered_vars(const std::vector<Token>& t) {
  std::set<std::string> vars;
  std::set<std::string> alias_types(kUnorderedTypes.begin(),
                                    kUnorderedTypes.end());
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Kind::Ident || alias_types.count(t[i].text) == 0)
      continue;
    // `using Alias = std::unordered_map<...>`: record the alias name.
    if (i >= 3 && is(t[i - 1], "::") && i >= 4 && is(t[i - 3], "=") &&
        t[i - 4].kind == Kind::Ident && i >= 5 && is(t[i - 5], "using")) {
      alias_types.insert(t[i - 4].text);
      continue;
    }
    std::size_t j = skip_template_args(t, i + 1);
    while (j < t.size() &&
           (is(t[j], "&") || is(t[j], "*") || is(t[j], "const")))
      ++j;
    if (j < t.size() && t[j].kind == Kind::Ident) vars.insert(t[j].text);
  }
  return vars;
}

/// Names of variables declared float/double (including simple declarator
/// lists and `auto x = <float literal>`), and of std::vector<float/double>
/// variables. Lexical best effort: function names declared with a floating
/// return type are also collected, which is harmless for the rules using
/// this set.
struct FloatDecls {
  std::set<std::string> scalars;
  std::set<std::string> vectors;
};

FloatDecls collect_float_decls(const std::vector<Token>& t) {
  FloatDecls out;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Kind::Ident) continue;
    // std::vector<double> name
    if (t[i].text == "vector" && i + 1 < t.size() && is(t[i + 1], "<")) {
      const std::size_t inner = i + 2;
      if (inner < t.size() && (is(t[inner], "double") ||
                               is(t[inner], "float"))) {
        std::size_t j = skip_template_args(t, i + 1);
        while (j < t.size() &&
               (is(t[j], "&") || is(t[j], "*") || is(t[j], "const")))
          ++j;
        if (j < t.size() && t[j].kind == Kind::Ident)
          out.vectors.insert(t[j].text);
      }
      continue;
    }
    const bool floating = t[i].text == "double" || t[i].text == "float";
    if (floating) {
      // Declarator list: double a = ..., b = ...;
      std::size_t j = i + 1;
      for (;;) {
        // A '*' declares a pointer to float, whose own comparisons are
        // pointer comparisons — stop, do not record the name.
        if (j < t.size() && is(t[j], "*")) break;
        while (j < t.size() && (is(t[j], "&") || is(t[j], "const"))) ++j;
        if (j >= t.size() || t[j].kind != Kind::Ident) break;
        // Only a plain declarator counts: `double time(...)` declares a
        // function, and in a parameter list the declarator after a comma
        // may open an unrelated type (`double x, const Foo& y`).
        if (j + 1 >= t.size() ||
            (!is(t[j + 1], "=") && !is(t[j + 1], ",") &&
             !is(t[j + 1], ";") && !is(t[j + 1], ")") &&
             !is(t[j + 1], "{") && !is(t[j + 1], "[") &&
             !is(t[j + 1], ":")))
          break;
        out.scalars.insert(t[j].text);
        ++j;
        // Skip an initializer (or parameter default) to the next ',' or
        // an end-of-declaration token, at top nesting level.
        int par = 0, brk = 0, brc = 0;
        bool more = false;
        for (; j < t.size(); ++j) {
          const std::string& x = t[j].text;
          if (x == "(") ++par;
          else if (x == ")") { if (par == 0) break; --par; }
          else if (x == "[") ++brk;
          else if (x == "]") --brk;
          else if (x == "{") { if (brc == 0 && par == 0) break; ++brc; }
          else if (x == "}") --brc;
          else if (x == ";" && par == 0 && brk == 0 && brc == 0) break;
          else if (x == "," && par == 0 && brk == 0 && brc == 0) {
            more = true;
            ++j;
            break;
          }
        }
        if (!more) break;
      }
      continue;
    }
    // auto x = 0.5;
    if (t[i].text == "auto" && i + 3 < t.size() &&
        t[i + 1].kind == Kind::Ident && is(t[i + 2], "=") &&
        t[i + 3].kind == Kind::FloatLit)
      out.scalars.insert(t[i + 1].text);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

class Linter {
 public:
  Linter(std::string_view path, const Lexed& lx, const Options& opt)
      : path_(path), lx_(lx), opt_(opt) {}

  std::vector<Finding> run() {
    if (opt_.check_include_hygiene) include_hygiene();
    if (opt_.check_nondet) nondet_source();
    if (opt_.check_unordered_iter) unordered_iteration();
    if (opt_.check_float_sort) float_sort();
    if (opt_.check_float_eq) float_eq();
    if (opt_.check_raw_sync) raw_sync();
    return std::move(findings_);
  }

 private:
  void add(int line, std::string_view rule, std::string message) {
    // A LINT-ALLOW pragma suppresses its own line and the following line.
    for (int l = line - 1; l <= line; ++l) {
      const auto it = lx_.allows.find(l);
      if (it != lx_.allows.end() && it->second.count(std::string(rule)))
        return;
    }
    findings_.push_back(
        {std::string(path_), line, std::string(rule), std::move(message)});
  }

  // include-hygiene: headers start with #pragma once (before any
  // #include); no "../" includes; no .cpp includes.
  void include_hygiene() {
    const bool header = path_.size() > 4 &&
                        path_.substr(path_.size() - 4) == ".hpp";
    bool saw_pragma_once = false;
    bool include_before_pragma = false;
    for (const Directive& d : lx_.directives) {
      const std::string& s = d.text;
      if (s.find("pragma") != std::string::npos &&
          s.find("once") != std::string::npos)
        saw_pragma_once = true;
      const std::size_t inc = s.find("include");
      if (inc == std::string::npos) continue;
      if (!saw_pragma_once) include_before_pragma = true;
      const std::size_t q1 = s.find_first_of("\"<", inc);
      if (q1 == std::string::npos) continue;
      const std::size_t q2 = s.find_first_of("\">", q1 + 1);
      if (q2 == std::string::npos) continue;
      const std::string inc_path = s.substr(q1 + 1, q2 - q1 - 1);
      if (inc_path.rfind("../", 0) == 0)
        add(d.line, "include-hygiene",
            "parent-relative include \"" + inc_path +
                "\"; include project headers by their src/-relative path");
      if (inc_path.size() > 4 &&
          inc_path.substr(inc_path.size() - 4) == ".cpp")
        add(d.line, "include-hygiene",
            "#include of a .cpp file (" + inc_path + ")");
    }
    if (header && (!saw_pragma_once || include_before_pragma))
      add(1, "include-hygiene",
          saw_pragma_once
              ? "#pragma once must precede every #include"
              : "header is missing #pragma once");
  }

  // nondet-source: wall clocks and unseeded randomness are banned in
  // deterministic code — a schedule decision or replay that reads them
  // cannot reproduce bit for bit (docs/static_analysis.md).
  void nondet_source() {
    const auto& t = lx_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Kind::Ident) continue;
      const std::string& x = t[i].text;
      if (x == "random_device")
        add(t[i].line, "nondet-source",
            "std::random_device is unseeded; use util/rng (Rng) so runs "
            "replay from a seed");
      else if (x == "system_clock" || x == "high_resolution_clock")
        add(t[i].line, "nondet-source",
            "std::chrono::" + x +
                " is wall-clock; telemetry must use util/stopwatch "
                "(steady_clock) and decisions must not read clocks");
      else if (x == "rand" || x == "srand" || x == "time" || x == "clock") {
        const Token* nx = next_tok(t, i);
        if (nx == nullptr || !is(*nx, "(")) continue;
        const Token* pv = prev_tok(t, i);
        if (pv != nullptr && (is(*pv, ".") || is(*pv, "->"))) continue;
        if (pv != nullptr && is(*pv, "::") && !std_qualified(t, i))
          continue;  // Foo::time(...) — not the libc call
        // `double time(...)` / `virtual time(...)`: a declaration of a
        // member named time, not a call into libc.
        if (pv != nullptr && (pv->kind == Kind::Ident || is(*pv, ">") ||
                              is(*pv, "&") || is(*pv, "*")))
          continue;
        // Unqualified time()/clock(): only the libc calling shapes count
        // (no argument, a null/zero argument, or an out-pointer). A member
        // call like time(p) computes an execution time, not wall time.
        if ((x == "time" || x == "clock") && !std_qualified(t, i)) {
          const Token* arg = next_tok(t, i + 1);
          const bool libc_shape =
              arg != nullptr &&
              (is(*arg, ")") || is(*arg, "nullptr") || is(*arg, "NULL") ||
               is(*arg, "0") || is(*arg, "&"));
          if (!libc_shape) continue;
        }
        add(t[i].line, "nondet-source",
            x == "rand" || x == "srand"
                ? "rand()/srand() is process-global and unseeded per run; "
                  "use util/rng (Rng)"
                : x + "() reads the wall clock; schedules must replay "
                      "independent of real time");
      }
    }
  }

  // unordered-iteration: iterating a hash container feeds its
  // implementation-defined order into whatever consumes the loop — a
  // tie-break seeded from it destroys the threads=N == threads=1
  // replay guarantee. Membership tests are fine; iteration is not.
  void unordered_iteration() {
    const auto& t = lx_.tokens;
    const std::set<std::string> vars = collect_unordered_vars(t);
    if (vars.empty()) return;
    for (std::size_t i = 0; i < t.size(); ++i) {
      // for (... : var)
      if (t[i].kind == Kind::Ident && is(t[i], "for") && i + 1 < t.size() &&
          is(t[i + 1], "(")) {
        const std::size_t end = match_forward(t, i + 1, "(", ")");
        std::size_t colon = 0;
        int depth = 0;
        for (std::size_t j = i + 1; j < end; ++j) {
          if (is(t[j], "(")) ++depth;
          else if (is(t[j], ")")) --depth;
          else if (is(t[j], ":") && depth == 1) {
            colon = j;
            break;
          }
        }
        for (std::size_t j = colon; colon != 0 && j < end; ++j)
          if (t[j].kind == Kind::Ident && vars.count(t[j].text)) {
            add(t[j].line, "unordered-iteration",
                "range-for over unordered container '" + t[j].text +
                    "'; iteration order is implementation-defined — use an "
                    "ordered container or sort the keys first");
            break;
          }
      }
      // var.begin() / var.cbegin() — iterator loops and algorithms.
      if (t[i].kind == Kind::Ident && vars.count(t[i].text) &&
          i + 2 < t.size() && is(t[i + 1], ".") &&
          (is(t[i + 2], "begin") || is(t[i + 2], "cbegin") ||
           is(t[i + 2], "rbegin")))
        add(t[i].line, "unordered-iteration",
            "iterator over unordered container '" + t[i].text +
                "'; iteration order is implementation-defined");
    }
  }

  // float-sort: std::sort on floating keys without a comparator. The
  // default operator< is not a strict weak order in the presence of NaN,
  // so the result (and everything downstream) is unspecified.
  void float_sort() {
    const auto& t = lx_.tokens;
    const FloatDecls decls = collect_float_decls(t);
    if (decls.vectors.empty()) return;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Kind::Ident ||
          (t[i].text != "sort" && t[i].text != "stable_sort"))
        continue;
      const Token* pv = prev_tok(t, i);
      if (pv != nullptr && (is(*pv, ".") || is(*pv, "->"))) continue;
      if (pv != nullptr && is(*pv, "::") && !std_qualified(t, i)) continue;
      if (i + 1 >= t.size() || !is(t[i + 1], "(")) continue;
      const std::size_t end = match_forward(t, i + 1, "(", ")");
      int depth = 0, commas = 0;
      bool float_range = false;
      for (std::size_t j = i + 1; j < end; ++j) {
        if (is(t[j], "(")) ++depth;
        else if (is(t[j], ")")) --depth;
        else if (is(t[j], ",") && depth == 1) ++commas;
        else if (t[j].kind == Kind::Ident && decls.vectors.count(t[j].text))
          float_range = true;
      }
      if (commas == 1 && float_range)
        add(t[i].line, "float-sort",
            "std::" + t[i].text +
                " on a float/double range without a comparator; NaN breaks "
                "strict weak ordering — pass an explicit total-order "
                "comparator");
    }
  }

  // float-eq: exact ==/!= on floating values. Outside tests this is
  // almost always a rounding bug; where exact comparison is the point
  // (tie-breaks, replay invariants) say so with LINT-ALLOW(float-eq).
  void float_eq() {
    const auto& t = lx_.tokens;
    const FloatDecls decls = collect_float_decls(t);
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Kind::Punct || (!is(t[i], "==") && !is(t[i], "!=")))
        continue;
      const Token* pv = prev_tok(t, i);
      const Token* nx = next_tok(t, i);
      auto floating = [&](const Token* tok) {
        if (tok == nullptr) return false;
        if (tok->kind == Kind::FloatLit) return true;
        return tok->kind == Kind::Ident && decls.scalars.count(tok->text) > 0;
      };
      // An identifier right of the operator that is itself member-accessed,
      // called, or qualified (`x != v.begin()`) is not the operand — the
      // access result is, and its type is unknown here.
      bool nx_is_value = floating(nx);
      if (nx_is_value && nx->kind == Kind::Ident) {
        const Token* after = next_tok(t, i + 1);
        if (after != nullptr && (is(*after, ".") || is(*after, "->") ||
                                 is(*after, "(") || is(*after, "::")))
          nx_is_value = false;
      }
      if (floating(pv) || nx_is_value)
        add(t[i].line, "float-eq",
            "exact " + t[i].text +
                " on floating-point values; compare with a tolerance, or "
                "mark a deliberate exact tie-break with LINT-ALLOW(float-eq)");
    }
  }

  // raw-mutex: naked std synchronization primitives carry no Clang
  // thread-safety annotations, so lock/unlock discipline on them is
  // invisible to -Wthread-safety. Use the annotated wrappers.
  void raw_sync() {
    static const std::set<std::string> kBanned = {
        "mutex", "recursive_mutex", "shared_mutex", "timed_mutex",
        "condition_variable", "condition_variable_any", "lock_guard",
        "unique_lock", "scoped_lock", "shared_lock"};
    const auto& t = lx_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Kind::Ident || kBanned.count(t[i].text) == 0)
        continue;
      if (!std_qualified(t, i)) continue;
      add(t[i].line, "raw-mutex",
          "std::" + t[i].text +
              " is invisible to Clang thread-safety analysis; use "
              "locmps::Mutex / MutexLock / CondVar from util/annotations.hpp");
    }
  }

  std::string_view path_;
  const Lexed& lx_;
  const Options& opt_;
  std::vector<Finding> findings_;
};

bool path_contains(std::string_view path, std::string_view part) {
  return path.find(part) != std::string_view::npos;
}

}  // namespace

Options options_for(std::string_view path) {
  Options o;
  const bool in_tests = path_contains(path, "tests/");
  const bool in_src = path_contains(path, "src/");
  o.check_float_eq = !in_tests;
  o.check_nondet = !in_tests;
  o.check_unordered_iter = in_src;
  o.check_raw_sync = !path_contains(path, "util/annotations.hpp");
  return o;
}

bool skip_path(std::string_view path) {
  return path_contains(path, "lint_fixtures") ||
         path_contains(path, "build") || path_contains(path, ".git/");
}

std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view text, const Options& opt) {
  const Lexed lx = lex(text);
  Linter linter(path, lx, opt);
  std::vector<Finding> out = linter.run();
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::vector<std::string> rule_names() {
  return {"unordered-iteration", "nondet-source", "float-sort",
          "float-eq",            "include-hygiene", "raw-mutex"};
}

std::string format(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

}  // namespace locmps::lint
