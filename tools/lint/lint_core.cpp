#include "lint_core.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "lexer.hpp"
#include "symbols.hpp"

namespace locmps::lint {

namespace {

// ---------------------------------------------------------------------------
// Shared helpers over the token stream
// ---------------------------------------------------------------------------

/// Names of variables declared float/double (including simple declarator
/// lists and `auto x = <float literal>`), and of std::vector<float/double>
/// variables. Lexical best effort: function names declared with a floating
/// return type are also collected, which is harmless for the rules using
/// this set.
struct FloatDecls {
  std::set<std::string> scalars;
  std::set<std::string> vectors;
};

FloatDecls collect_float_decls(const std::vector<Token>& t) {
  FloatDecls out;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Kind::Ident) continue;
    // std::vector<double> name
    if (t[i].text == "vector" && i + 1 < t.size() && is(t[i + 1], "<")) {
      const std::size_t inner = i + 2;
      if (inner < t.size() && (is(t[inner], "double") ||
                               is(t[inner], "float"))) {
        std::size_t j = skip_template_args(t, i + 1);
        while (j < t.size() &&
               (is(t[j], "&") || is(t[j], "*") || is(t[j], "const")))
          ++j;
        if (j < t.size() && t[j].kind == Kind::Ident)
          out.vectors.insert(t[j].text);
      }
      continue;
    }
    const bool floating = t[i].text == "double" || t[i].text == "float";
    if (floating) {
      // Declarator list: double a = ..., b = ...;
      std::size_t j = i + 1;
      for (;;) {
        // A '*' declares a pointer to float, whose own comparisons are
        // pointer comparisons — stop, do not record the name.
        if (j < t.size() && is(t[j], "*")) break;
        while (j < t.size() && (is(t[j], "&") || is(t[j], "const"))) ++j;
        if (j >= t.size() || t[j].kind != Kind::Ident) break;
        // Only a plain declarator counts: `double time(...)` declares a
        // function, and in a parameter list the declarator after a comma
        // may open an unrelated type (`double x, const Foo& y`).
        if (j + 1 >= t.size() ||
            (!is(t[j + 1], "=") && !is(t[j + 1], ",") &&
             !is(t[j + 1], ";") && !is(t[j + 1], ")") &&
             !is(t[j + 1], "{") && !is(t[j + 1], "[") &&
             !is(t[j + 1], ":")))
          break;
        out.scalars.insert(t[j].text);
        ++j;
        // Skip an initializer (or parameter default) to the next ',' or
        // an end-of-declaration token, at top nesting level.
        int par = 0, brk = 0, brc = 0;
        bool more = false;
        for (; j < t.size(); ++j) {
          const std::string& x = t[j].text;
          if (x == "(") ++par;
          else if (x == ")") { if (par == 0) break; --par; }
          else if (x == "[") ++brk;
          else if (x == "]") --brk;
          else if (x == "{") { if (brc == 0 && par == 0) break; ++brc; }
          else if (x == "}") --brc;
          else if (x == ";" && par == 0 && brk == 0 && brc == 0) break;
          else if (x == "," && par == 0 && brk == 0 && brc == 0) {
            more = true;
            ++j;
            break;
          }
        }
        if (!more) break;
      }
      continue;
    }
    // auto x = 0.5;
    if (t[i].text == "auto" && i + 3 < t.size() &&
        t[i + 1].kind == Kind::Ident && is(t[i + 2], "=") &&
        t[i + 3].kind == Kind::FloatLit)
      out.scalars.insert(t[i + 1].text);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

class Linter {
 public:
  Linter(std::string_view path, const Lexed& lx, const Options& opt)
      : path_(path), lx_(lx), opt_(opt) {}

  std::vector<Finding> run() {
    if (opt_.check_unordered_iter || opt_.check_digest_taint)
      symbols_ = collect_symbols(lx_.tokens);
    if (opt_.check_include_hygiene) include_hygiene();
    if (opt_.check_nondet) nondet_source();
    if (opt_.check_unordered_iter) unordered_iteration();
    if (opt_.check_digest_taint) digest_taint();
    if (opt_.check_float_sort) float_sort();
    if (opt_.check_float_eq) float_eq();
    if (opt_.check_raw_sync) raw_sync();
    return std::move(findings_);
  }

 private:
  void add(int line, std::string_view rule, std::string message) {
    // A LINT-ALLOW pragma suppresses its own line and the following line.
    for (int l = line - 1; l <= line; ++l) {
      const auto it = lx_.allows.find(l);
      if (it != lx_.allows.end() && it->second.count(std::string(rule)))
        return;
    }
    findings_.push_back(
        {std::string(path_), line, std::string(rule), std::move(message)});
  }

  // include-hygiene: headers start with #pragma once (before any
  // #include); no "../" includes; no .cpp includes.
  void include_hygiene() {
    const bool header = path_.size() > 4 &&
                        path_.substr(path_.size() - 4) == ".hpp";
    bool saw_pragma_once = false;
    bool include_before_pragma = false;
    for (const Directive& d : lx_.directives) {
      const std::string& s = d.text;
      if (s.find("pragma") != std::string::npos &&
          s.find("once") != std::string::npos)
        saw_pragma_once = true;
      const std::size_t inc = s.find("include");
      if (inc == std::string::npos) continue;
      if (!saw_pragma_once) include_before_pragma = true;
      const std::size_t q1 = s.find_first_of("\"<", inc);
      if (q1 == std::string::npos) continue;
      const std::size_t q2 = s.find_first_of("\">", q1 + 1);
      if (q2 == std::string::npos) continue;
      const std::string inc_path = s.substr(q1 + 1, q2 - q1 - 1);
      if (inc_path.rfind("../", 0) == 0)
        add(d.line, "include-hygiene",
            "parent-relative include \"" + inc_path +
                "\"; include project headers by their src/-relative path");
      if (inc_path.size() > 4 &&
          inc_path.substr(inc_path.size() - 4) == ".cpp")
        add(d.line, "include-hygiene",
            "#include of a .cpp file (" + inc_path + ")");
    }
    if (header && (!saw_pragma_once || include_before_pragma))
      add(1, "include-hygiene",
          saw_pragma_once
              ? "#pragma once must precede every #include"
              : "header is missing #pragma once");
  }

  // nondet-source: wall clocks and unseeded randomness are banned in
  // deterministic code — a schedule decision or replay that reads them
  // cannot reproduce bit for bit (docs/static_analysis.md).
  void nondet_source() {
    const auto& t = lx_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Kind::Ident) continue;
      const std::string& x = t[i].text;
      if (x == "random_device")
        add(t[i].line, "nondet-source",
            "std::random_device is unseeded; use util/rng (Rng) so runs "
            "replay from a seed");
      else if (x == "system_clock" || x == "high_resolution_clock")
        add(t[i].line, "nondet-source",
            "std::chrono::" + x +
                " is wall-clock; telemetry must use util/stopwatch "
                "(steady_clock) and decisions must not read clocks");
      else if (x == "rand" || x == "srand" || x == "time" || x == "clock") {
        const Token* nx = next_tok(t, i);
        if (nx == nullptr || !is(*nx, "(")) continue;
        const Token* pv = prev_tok(t, i);
        if (pv != nullptr && (is(*pv, ".") || is(*pv, "->"))) continue;
        if (pv != nullptr && is(*pv, "::") && !std_qualified(t, i))
          continue;  // Foo::time(...) — not the libc call
        // `double time(...)` / `virtual time(...)`: a declaration of a
        // member named time, not a call into libc.
        if (pv != nullptr && (pv->kind == Kind::Ident || is(*pv, ">") ||
                              is(*pv, "&") || is(*pv, "*")))
          continue;
        // Unqualified time()/clock(): only the libc calling shapes count
        // (no argument, a null/zero argument, or an out-pointer). A member
        // call like time(p) computes an execution time, not wall time.
        if ((x == "time" || x == "clock") && !std_qualified(t, i)) {
          const Token* arg = next_tok(t, i + 1);
          const bool libc_shape =
              arg != nullptr &&
              (is(*arg, ")") || is(*arg, "nullptr") || is(*arg, "NULL") ||
               is(*arg, "0") || is(*arg, "&"));
          if (!libc_shape) continue;
        }
        add(t[i].line, "nondet-source",
            x == "rand" || x == "srand"
                ? "rand()/srand() is process-global and unseeded per run; "
                  "use util/rng (Rng)"
                : x + "() reads the wall clock; schedules must replay "
                      "independent of real time");
      }
    }
  }

  // unordered-iteration: iterating a hash container feeds its
  // implementation-defined order into whatever consumes the loop — a
  // tie-break seeded from it destroys the threads=N == threads=1
  // replay guarantee. Membership tests are fine; iteration is not.
  // The symbol table sees through `using`/`typedef` aliases, member
  // fields and `auto` rebindings (tools/lint/symbols.hpp).
  void unordered_iteration() {
    const auto& t = lx_.tokens;
    const std::set<std::string>& vars = symbols_.unordered_vars;
    if (vars.empty()) return;
    for (std::size_t i = 0; i < t.size(); ++i) {
      // for (... : var)
      if (t[i].kind == Kind::Ident && is(t[i], "for") && i + 1 < t.size() &&
          is(t[i + 1], "(")) {
        const std::size_t end = match_forward(t, i + 1, "(", ")");
        std::size_t colon = 0;
        int depth = 0;
        for (std::size_t j = i + 1; j < end; ++j) {
          if (is(t[j], "(")) ++depth;
          else if (is(t[j], ")")) --depth;
          else if (is(t[j], ":") && depth == 1) {
            colon = j;
            break;
          }
        }
        for (std::size_t j = colon; colon != 0 && j < end; ++j)
          if (t[j].kind == Kind::Ident && vars.count(t[j].text)) {
            add(t[j].line, "unordered-iteration",
                "range-for over unordered container '" + t[j].text +
                    "'; iteration order is implementation-defined — use an "
                    "ordered container or sort the keys first");
            break;
          }
      }
      // var.begin() / var.cbegin() — iterator loops and algorithms.
      if (t[i].kind == Kind::Ident && vars.count(t[i].text) &&
          i + 2 < t.size() && is(t[i + 1], ".") &&
          (is(t[i + 2], "begin") || is(t[i + 2], "cbegin") ||
           is(t[i + 2], "rbegin")))
        add(t[i].line, "unordered-iteration",
            "iterator over unordered container '" + t[i].text +
                "'; iteration order is implementation-defined");
    }
  }

  // digest-taint: a value obtained by iterating an unordered container
  // must not flow into an observability sink or a sort key. The obs
  // digests (event traces, metric counters) are part of the bit-exact
  // replay contract — threads=N must emit byte-identical records — and a
  // sort keyed on hash-order-derived data is nondeterministic even when
  // the sorted range itself is not. Flow tracking is statement/local-init
  // only (tools/lint/symbols.hpp); collecting keys and sorting them is
  // the sanctioned fix and does not trip this rule.
  void digest_taint() {
    const auto& t = lx_.tokens;
    const auto& taint = symbols_.taint;
    if (taint.empty()) return;
    auto first_tainted = [&](std::size_t from,
                             std::size_t to) -> const Token* {
      for (std::size_t j = from; j < to && j < t.size(); ++j)
        if (t[j].kind == Kind::Ident && taint.count(t[j].text) != 0)
          return &t[j];
      return nullptr;
    };
    auto origin_of = [&](const Token& tok) {
      return taint.at(tok.text);
    };
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Kind::Ident) continue;
      const std::string& x = t[i].text;
      // sink.emit(...) / sink->emit(...): any emit call is an obs sink.
      const Token* pv = prev_tok(t, i);
      const bool member_call =
          pv != nullptr && (is(*pv, ".") || is(*pv, "->"));
      const bool on_sink_var =
          i >= 2 && member_call && t[i - 2].kind == Kind::Ident &&
          symbols_.sink_vars.count(t[i - 2].text) != 0;
      const bool sink_method =
          (x == "emit" && member_call) ||
          ((x == "add" || x == "set" || x == "sample") && on_sink_var);
      if (sink_method && i + 1 < t.size() && is(t[i + 1], "(")) {
        const std::size_t end = match_forward(t, i + 1, "(", ")");
        if (const Token* bad = first_tainted(i + 2, end - 1))
          add(bad->line, "digest-taint",
              "'" + bad->text + "' derives from iterating unordered "
              "container '" + origin_of(*bad) + "' and flows into obs "
              "sink " + x + "(); the emitted digest would depend on hash "
              "order — iterate a sorted copy instead");
        continue;
      }
      // obs::Event("...")...field(...): the fluent event builder. Scan
      // the whole statement — the chain's fields all land in the record.
      if (x == "Event" && !member_call && i + 1 < t.size() &&
          is(t[i + 1], "(")) {
        std::size_t end = i;
        int par = 0;
        for (std::size_t j = i + 1; j < t.size(); ++j) {
          if (is(t[j], "(")) ++par;
          else if (is(t[j], ")")) {
            if (--par == 0 && (j + 1 >= t.size() || !is(t[j + 1], "."))) {
              end = j;
              break;
            }
          } else if (is(t[j], ";") && par == 0) {
            end = j;
            break;
          }
        }
        if (const Token* bad = first_tainted(i + 2, end))
          add(bad->line, "digest-taint",
              "'" + bad->text + "' derives from iterating unordered "
              "container '" + origin_of(*bad) + "' and flows into an obs "
              "Event record; the trace digest would depend on hash order");
        continue;
      }
      // std::sort / stable_sort with a tainted argument (typically a
      // comparator capturing hash-order-derived keys).
      if ((x == "sort" || x == "stable_sort") && !member_call &&
          i + 1 < t.size() && is(t[i + 1], "(") &&
          (pv == nullptr || !is(*pv, "::") || std_qualified(t, i))) {
        const std::size_t end = match_forward(t, i + 1, "(", ")");
        if (const Token* bad = first_tainted(i + 2, end - 1))
          add(bad->line, "digest-taint",
              "std::" + x + " keyed on '" + bad->text + "', which derives "
              "from iterating unordered container '" + origin_of(*bad) +
              "'; the resulting order depends on hash order");
      }
    }
  }

  // float-sort: std::sort on floating keys without a comparator. The
  // default operator< is not a strict weak order in the presence of NaN,
  // so the result (and everything downstream) is unspecified.
  void float_sort() {
    const auto& t = lx_.tokens;
    const FloatDecls decls = collect_float_decls(t);
    if (decls.vectors.empty()) return;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Kind::Ident ||
          (t[i].text != "sort" && t[i].text != "stable_sort"))
        continue;
      const Token* pv = prev_tok(t, i);
      if (pv != nullptr && (is(*pv, ".") || is(*pv, "->"))) continue;
      if (pv != nullptr && is(*pv, "::") && !std_qualified(t, i)) continue;
      if (i + 1 >= t.size() || !is(t[i + 1], "(")) continue;
      const std::size_t end = match_forward(t, i + 1, "(", ")");
      int depth = 0, commas = 0;
      bool float_range = false;
      for (std::size_t j = i + 1; j < end; ++j) {
        if (is(t[j], "(")) ++depth;
        else if (is(t[j], ")")) --depth;
        else if (is(t[j], ",") && depth == 1) ++commas;
        else if (t[j].kind == Kind::Ident && decls.vectors.count(t[j].text))
          float_range = true;
      }
      if (commas == 1 && float_range)
        add(t[i].line, "float-sort",
            "std::" + t[i].text +
                " on a float/double range without a comparator; NaN breaks "
                "strict weak ordering — pass an explicit total-order "
                "comparator");
    }
  }

  // float-eq: exact ==/!= on floating values. Outside tests this is
  // almost always a rounding bug; where exact comparison is the point
  // (tie-breaks, replay invariants) say so with LINT-ALLOW(float-eq).
  void float_eq() {
    const auto& t = lx_.tokens;
    const FloatDecls decls = collect_float_decls(t);
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Kind::Punct || (!is(t[i], "==") && !is(t[i], "!=")))
        continue;
      const Token* pv = prev_tok(t, i);
      const Token* nx = next_tok(t, i);
      auto floating = [&](const Token* tok) {
        if (tok == nullptr) return false;
        if (tok->kind == Kind::FloatLit) return true;
        return tok->kind == Kind::Ident && decls.scalars.count(tok->text) > 0;
      };
      // An identifier right of the operator that is itself member-accessed,
      // called, or qualified (`x != v.begin()`) is not the operand — the
      // access result is, and its type is unknown here.
      bool nx_is_value = floating(nx);
      if (nx_is_value && nx->kind == Kind::Ident) {
        const Token* after = next_tok(t, i + 1);
        if (after != nullptr && (is(*after, ".") || is(*after, "->") ||
                                 is(*after, "(") || is(*after, "::")))
          nx_is_value = false;
      }
      if (floating(pv) || nx_is_value)
        add(t[i].line, "float-eq",
            "exact " + t[i].text +
                " on floating-point values; compare with a tolerance, or "
                "mark a deliberate exact tie-break with LINT-ALLOW(float-eq)");
    }
  }

  // raw-mutex: naked std synchronization primitives carry no Clang
  // thread-safety annotations, so lock/unlock discipline on them is
  // invisible to -Wthread-safety. Use the annotated wrappers.
  void raw_sync() {
    static const std::set<std::string> kBanned = {
        "mutex", "recursive_mutex", "shared_mutex", "timed_mutex",
        "condition_variable", "condition_variable_any", "lock_guard",
        "unique_lock", "scoped_lock", "shared_lock"};
    const auto& t = lx_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Kind::Ident || kBanned.count(t[i].text) == 0)
        continue;
      if (!std_qualified(t, i)) continue;
      add(t[i].line, "raw-mutex",
          "std::" + t[i].text +
              " is invisible to Clang thread-safety analysis; use "
              "locmps::Mutex / MutexLock / CondVar from util/annotations.hpp");
    }
  }

  std::string_view path_;
  const Lexed& lx_;
  const Options& opt_;
  SymbolTable symbols_;
  std::vector<Finding> findings_;
};

bool path_contains(std::string_view path, std::string_view part) {
  return path.find(part) != std::string_view::npos;
}

}  // namespace

Options options_for(std::string_view path) {
  Options o;
  const bool in_tests = path_contains(path, "tests/");
  const bool in_src = path_contains(path, "src/");
  o.check_float_eq = !in_tests;
  o.check_nondet = !in_tests;
  o.check_unordered_iter = in_src;
  o.check_digest_taint = in_src;
  o.check_raw_sync = !path_contains(path, "util/annotations.hpp");
  return o;
}

bool skip_path(std::string_view path) {
  return path_contains(path, "lint_fixtures") ||
         path_contains(path, "build") || path_contains(path, ".git/");
}

std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view text, const Options& opt) {
  const Lexed lx = lex(text);
  Linter linter(path, lx, opt);
  std::vector<Finding> out = linter.run();
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::vector<std::string> rule_names() {
  return {"unordered-iteration", "nondet-source",   "float-sort",
          "float-eq",            "include-hygiene", "raw-mutex",
          "digest-taint",        "layer-violation", "include-cycle"};
}

std::string format(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

}  // namespace locmps::lint
