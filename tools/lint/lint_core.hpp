#pragma once
/// \file lint_core.hpp
/// locmps-lint: project-specific determinism and hygiene checks.
///
/// A lightweight, libclang-free static checker (docs/static_analysis.md).
/// It tokenizes one translation unit at a time (strings, comments and
/// preprocessor directives handled, no macro expansion) and runs lexical
/// rules that encode the project's determinism contract: LoC-MPS with
/// threads=N must replay threads=1 bit for bit, and fault scripts must
/// replay exactly (docs/parallelism.md, docs/fault_tolerance.md). The
/// rules are deliberately simple and conservative — anything subtler
/// belongs in clang-tidy or the Clang thread-safety analysis.
///
/// Suppression: a `// LINT-ALLOW(rule)` or `// LINT-ALLOW(rule1,rule2)`
/// comment suppresses those rules on its own line and on the next line,
/// so the pragma can sit above the offending statement. Whole-file
/// grandfathering lives in the committed baseline (tools/lint/
/// lint_baseline.txt), handled by the driver, not here.

#include <string>
#include <string_view>
#include <vector>

namespace locmps::lint {

/// One rule violation.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Which rules apply to a file; derived from its path by options_for().
struct Options {
  bool check_unordered_iter = true;  ///< off outside src/
  bool check_nondet = true;          ///< off in tests/
  bool check_float_eq = true;        ///< off in tests/
  bool check_float_sort = true;
  bool check_include_hygiene = true;
  bool check_raw_sync = true;        ///< off in util/annotations.hpp
  bool check_digest_taint = true;    ///< off outside src/
};

/// Rule applicability by repo-relative path (see docs/static_analysis.md):
///  * tests/ may compare floats exactly and call wall clocks;
///  * only src/ counts as scheduler/sim decision paths for the
///    unordered-iteration rule;
///  * src/util/annotations.hpp is the one place allowed to name the raw
///    std synchronization primitives it wraps.
Options options_for(std::string_view path);

/// True for paths the driver should skip entirely (the deliberately bad
/// lint fixtures and anything under a build directory).
bool skip_path(std::string_view path);

/// Lints one file's contents. \p path is used for reporting and for the
/// header/source distinction; rule selection comes from \p opt.
std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view text, const Options& opt);

/// All rule names, for --list-rules and fixture tests.
std::vector<std::string> rule_names();

/// Formats a finding as "file:line: [rule] message".
std::string format(const Finding& f);

}  // namespace locmps::lint
