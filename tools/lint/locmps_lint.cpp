/// \file locmps_lint.cpp
/// CLI driver for locmps-lint (tools/lint/lint_core.*).
///
///   locmps-lint [--baseline FILE] [--list-rules] PATH...
///
/// Walks every PATH (file or directory) for .cpp/.hpp sources, lints each
/// with the rule set options_for() derives from its path, filters findings
/// through the committed baseline, and prints the rest as
/// "file:line: [rule] message". Exit 0 = clean, 1 = findings, 2 = usage or
/// I/O error.
///
/// Baseline format (tools/lint/lint_baseline.txt): one "path:rule" per
/// line, '#' comments. An entry grandfathers every finding of that rule in
/// that file — prefer inline LINT-ALLOW pragmas, which are visible at the
/// offending statement; the baseline exists so adopting a new rule never
/// requires a same-commit sweep of historic findings.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace fs = std::filesystem;
using locmps::lint::Finding;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

/// Path as reported: relative, forward slashes, no leading "./".
std::string display_path(const fs::path& p) {
  std::string s = p.generic_string();
  if (s.rfind("./", 0) == 0) s.erase(0, 2);
  return s;
}

std::set<std::string> read_baseline(const std::string& file, bool& ok) {
  std::set<std::string> entries;
  ok = true;
  if (file.empty()) return entries;
  std::ifstream in(file);
  if (!in) {
    std::cerr << "locmps-lint: cannot read baseline " << file << "\n";
    ok = false;
    return entries;
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r' ||
                             line.back() == '\t'))
      line.pop_back();
    std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    entries.insert(line.substr(start));
  }
  return entries;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_file;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline") {
      if (++i >= argc) {
        std::cerr << "locmps-lint: --baseline needs a file argument\n";
        return 2;
      }
      baseline_file = argv[i];
    } else if (arg == "--list-rules") {
      for (const std::string& r : locmps::lint::rule_names())
        std::cout << r << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: locmps-lint [--baseline FILE] [--list-rules] "
                   "PATH...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "locmps-lint: unknown option " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: locmps-lint [--baseline FILE] [--list-rules] "
                 "PATH...\n";
    return 2;
  }

  bool baseline_ok = false;
  const std::set<std::string> baseline =
      read_baseline(baseline_file, baseline_ok);
  if (!baseline_ok) return 2;

  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && lintable(it->path()))
          files.push_back(display_path(it->path()));
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(display_path(p));
    } else {
      std::cerr << "locmps-lint: no such path " << p << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t checked = 0, suppressed = 0;
  std::vector<Finding> findings;
  for (const std::string& file : files) {
    if (locmps::lint::skip_path(file)) continue;
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "locmps-lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    ++checked;
    for (Finding& f : locmps::lint::lint_source(
             file, text, locmps::lint::options_for(file))) {
      if (baseline.count(f.file + ":" + f.rule) != 0) {
        ++suppressed;
        continue;
      }
      findings.push_back(std::move(f));
    }
  }

  for (const Finding& f : findings)
    std::cout << locmps::lint::format(f) << "\n";
  std::cerr << "locmps-lint: " << checked << " file(s), "
            << findings.size() << " finding(s)";
  if (suppressed != 0) std::cerr << ", " << suppressed << " baselined";
  std::cerr << "\n";
  return findings.empty() ? 0 : 1;
}
