/// \file locmps_lint.cpp
/// locmps-lint entry point. All the logic lives in driver.cpp (so the
/// fixture tests can run the real CLI in-process); this file only adapts
/// argv and the standard streams.

#include <iostream>
#include <string>
#include <vector>

#include "driver.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return locmps::lint::run_cli(args, std::cout, std::cerr);
}
