#include "symbols.hpp"

namespace locmps::lint {

namespace {

const std::set<std::string> kUnorderedBuiltins = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

const std::set<std::string> kSinkTypes = {"EventBuffer", "JsonlSink",
                                          "EventSink", "MetricsRegistry"};

/// Tokens that may appear in a range-for declarator without naming the
/// loop variable.
const std::set<std::string> kDeclKeywords = {"auto", "const", "volatile",
                                             "static", "std"};

/// Index of the first token of the statement containing \p i: one past
/// the previous ';', '{' or '}' (or 0).
std::size_t statement_start(const std::vector<Token>& t, std::size_t i) {
  std::size_t j = i;
  while (j > 0) {
    const Token& p = t[j - 1];
    if (is(p, ";") || is(p, "{") || is(p, "}")) break;
    --j;
  }
  return j;
}

/// Index of the terminating ';' of the statement containing \p i, at
/// paren/bracket nesting level zero (or toks.size()).
std::size_t statement_end(const std::vector<Token>& t, std::size_t i) {
  int par = 0, brk = 0, brc = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    const std::string& x = t[j].text;
    if (x == "(") ++par;
    else if (x == ")") { if (par == 0) return j; --par; }
    else if (x == "[") ++brk;
    else if (x == "]") --brk;
    else if (x == "{") ++brc;
    else if (x == "}") { if (brc == 0) return j; --brc; }
    else if (x == ";" && par == 0 && brk == 0 && brc == 0) return j;
  }
  return t.size();
}

/// Collects type aliases and declared variables for the given set of
/// type names; returns true when something new was learned.
bool collect_types_and_vars(const std::vector<Token>& t,
                            std::set<std::string>& types,
                            std::set<std::string>& vars) {
  bool grew = false;
  auto add_type = [&](const std::string& n) {
    grew |= types.insert(n).second;
  };
  auto add_var = [&](const std::string& n) {
    grew |= vars.insert(n).second;
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Kind::Ident || types.count(t[i].text) == 0) continue;
    // A member access `x.unordered_map` can't occur; `x.find` etc. never
    // collide with type names, so no receiver check is needed here.
    const std::size_t start = statement_start(t, i);
    bool is_using = false, is_typedef = false;
    for (std::size_t j = start; j < i; ++j) {
      if (is(t[j], "using")) is_using = true;
      if (is(t[j], "typedef")) is_typedef = true;
    }
    if (is_using) {
      // using NAME = <...type...>; — NAME is the ident right after
      // `using`, before '='.
      for (std::size_t j = start; j + 2 < i; ++j)
        if (is(t[j], "using") && t[j + 1].kind == Kind::Ident &&
            is(t[j + 2], "="))
          add_type(t[j + 1].text);
      continue;
    }
    if (is_typedef) {
      // typedef <...type...> NAME; — NAME is the last ident before ';'.
      const std::size_t end = statement_end(t, i);
      for (std::size_t j = end; j > i; --j)
        if (t[j - 1].kind == Kind::Ident) {
          add_type(t[j - 1].text);
          break;
        }
      continue;
    }
    // A declaration: TYPE<...> [&*const]* NAME. Locals, parameters and
    // member fields all share this shape.
    std::size_t j = skip_template_args(t, i + 1);
    while (j < t.size() &&
           (is(t[j], "&") || is(t[j], "*") || is(t[j], "const")))
      ++j;
    if (j < t.size() && t[j].kind == Kind::Ident) add_var(t[j].text);
  }
  // auto x = other; / auto& x = other; — rebinding a known container.
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (!is(t[i], "auto")) continue;
    std::size_t j = i + 1;
    while (j < t.size() &&
           (is(t[j], "&") || is(t[j], "*") || is(t[j], "const")))
      ++j;
    if (j + 2 >= t.size() || t[j].kind != Kind::Ident || !is(t[j + 1], "="))
      continue;
    const Token& rhs = t[j + 2];
    const Token* after = next_tok(t, j + 2);
    if (rhs.kind == Kind::Ident && vars.count(rhs.text) != 0 &&
        (after == nullptr || is(*after, ";")))
      add_var(t[j].text);
  }
  return grew;
}

/// One propagation sweep of the taint relation; returns true on growth.
bool propagate_taint(const std::vector<Token>& t,
                     const std::set<std::string>& unordered_vars,
                     std::map<std::string, std::string>& taint) {
  bool grew = false;
  auto mark = [&](const std::string& name, const std::string& origin) {
    grew |= taint.emplace(name, origin).second;
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    // for (<decl> : <range>) where <range> names an unordered container:
    // every declared name (including structured bindings) is tainted.
    if (t[i].kind == Kind::Ident && is(t[i], "for") && i + 1 < t.size() &&
        is(t[i + 1], "(")) {
      const std::size_t end = match_forward(t, i + 1, "(", ")");
      std::size_t colon = 0;
      int depth = 0;
      for (std::size_t j = i + 1; j < end; ++j) {
        if (is(t[j], "(")) ++depth;
        else if (is(t[j], ")")) --depth;
        else if (is(t[j], ":") && depth == 1) {
          colon = j;
          break;
        }
      }
      if (colon == 0) continue;
      std::string origin;
      for (std::size_t j = colon; j < end; ++j)
        if (t[j].kind == Kind::Ident && unordered_vars.count(t[j].text)) {
          origin = t[j].text;
          break;
        }
      if (origin.empty()) continue;
      // The declared names: everything inside a structured binding
      // `[k, v]`, else the last identifier before the ':'. Type names in
      // the declarator (`std::pair<...>`) are never the declared name.
      bool structured = false;
      for (std::size_t j = i + 2; j < colon; ++j)
        if (is(t[j], "[")) {
          structured = true;
          for (std::size_t k = j + 1; k < colon && !is(t[k], "]"); ++k)
            if (t[k].kind == Kind::Ident &&
                kDeclKeywords.count(t[k].text) == 0)
              mark(t[k].text, origin);
          break;
        }
      if (!structured)
        for (std::size_t j = colon; j > i + 2; --j)
          if (t[j - 1].kind == Kind::Ident &&
              kDeclKeywords.count(t[j - 1].text) == 0) {
            mark(t[j - 1].text, origin);
            break;
          }
      continue;
    }
    // NAME = CONTAINER.begin()/cbegin()/rbegin() — iterator taint.
    if (t[i].kind == Kind::Ident && unordered_vars.count(t[i].text) != 0 &&
        i >= 2 && is(t[i - 1], "=") && t[i - 2].kind == Kind::Ident &&
        i + 2 < t.size() && is(t[i + 1], ".") &&
        (is(t[i + 2], "begin") || is(t[i + 2], "cbegin") ||
         is(t[i + 2], "rbegin")))
      mark(t[i - 2].text, t[i].text);
    // NAME = <expr with taint> / NAME += ... / NAME -= ... — statement
    // flow: anything computed from a tainted value is tainted.
    if (t[i].kind == Kind::Ident && i + 1 < t.size() &&
        (is(t[i + 1], "=") || is(t[i + 1], "+=") || is(t[i + 1], "-="))) {
      const std::size_t end = statement_end(t, i + 2);
      for (std::size_t j = i + 2; j < end; ++j)
        if (t[j].kind == Kind::Ident && taint.count(t[j].text) != 0) {
          mark(t[i].text, taint.at(t[j].text));
          break;
        }
    }
  }
  return grew;
}

}  // namespace

SymbolTable collect_symbols(const std::vector<Token>& toks) {
  SymbolTable out;
  out.unordered_types = kUnorderedBuiltins;
  // Alias chains (`using B = A;` after `using A = std::unordered_map<..>`)
  // and late declarations need a fixpoint; depth is tiny in practice.
  for (int iter = 0; iter < 8; ++iter)
    if (!collect_types_and_vars(toks, out.unordered_types,
                                out.unordered_vars))
      break;
  // Sink variables: one non-iterated pass is enough (no alias chasing —
  // the obs types are always declared by their own name).
  std::set<std::string> sink_types = kSinkTypes;
  collect_types_and_vars(toks, sink_types, out.sink_vars);
  for (int iter = 0; iter < 8; ++iter)
    if (!propagate_taint(toks, out.unordered_vars, out.taint)) break;
  return out;
}

}  // namespace locmps::lint
