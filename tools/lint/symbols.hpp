#pragma once
/// \file symbols.hpp
/// locmps-lint: a lightweight per-TU declaration tracker.
///
/// The per-file rules (lint_core) used to recognize an unordered container
/// only when its `std::unordered_*` spelling appeared in the declaration
/// statement itself — a `using` alias, a typedef, an `auto` binding or a
/// member field hid the container from the linter. This pass walks the
/// token stream once and resolves, lexically and conservatively:
///
///  * **unordered type names** — the four `std::unordered_*` containers
///    plus every alias reachable from them through `using A = B;` and
///    `typedef B A;` chains declared in the TU;
///  * **unordered variables** — every identifier declared (local,
///    parameter, or member field: lexically identical) with an unordered
///    type, plus `auto x = other;` / `auto& x = other;` rebindings of an
///    already-known unordered variable;
///  * **sink variables** — identifiers declared with one of the obs sink
///    types (`EventBuffer`, `JsonlSink`, `EventSink`, `MetricsRegistry`),
///    used by the digest-taint rule to recognize metric emission;
///  * **taint** — identifiers whose value derives from *iterating* an
///    unordered container: range-for loop variables (including structured
///    bindings), `begin()/cbegin()/rbegin()` iterators, and anything
///    assigned (`=`, `+=`, `-=`) from an already-tainted value within a
///    statement. Membership tests (`find`, `count`, `contains`) do not
///    taint — they are order-independent.
///
/// There is no scoping and no inter-procedural flow: a name, once known,
/// is known for the rest of the file. That is the same conservative
/// trade the rest of locmps-lint makes (docs/static_analysis.md); false
/// positives are expected to be rare and are silenced with LINT-ALLOW.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace locmps::lint {

struct SymbolTable {
  /// Unordered container type names: the std four + local aliases.
  std::set<std::string> unordered_types;
  /// Variables (locals, parameters, members) of an unordered type.
  std::set<std::string> unordered_vars;
  /// Variables of an obs sink type (EventBuffer, JsonlSink, ...).
  std::set<std::string> sink_vars;
  /// Hash-order-tainted identifiers -> the container they derive from.
  std::map<std::string, std::string> taint;
};

/// Builds the symbol table for one TU's token stream.
SymbolTable collect_symbols(const std::vector<Token>& toks);

}  // namespace locmps::lint
